// End-to-end integration of the Gsight pipeline: solo profiles -> scenario
// execution -> overlap-coded dataset -> incremental model -> prediction.
// Sizes are kept small so the suite stays fast; the benches run the
// full-scale versions.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "ml/metrics.hpp"
#include "workloads/functionbench.hpp"

namespace gsight::core {
namespace {

BuilderConfig small_builder_config() {
  BuilderConfig cfg;
  cfg.runner.servers = 3;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.runner.warmup_s = 3.0;
  cfg.runner.ls_measure_s = 12.0;
  cfg.runner.label_window_s = 3.0;
  cfg.encoder.servers = 3;
  cfg.encoder.max_workloads = 3;
  cfg.ls_qps_levels = {40.0};
  cfg.min_workloads = 2;
  cfg.max_workloads = 2;
  cfg.sc_scale = 0.08;
  cfg.profiler.ls_profile_s = 15.0;
  cfg.profiler.server = sim::ServerConfig::socket();
  return cfg;
}

TEST(ProfileKey, Composite) {
  EXPECT_EQ(profile_key("app", 0.0), "app");
  EXPECT_EQ(profile_key("app", 40.0), "app@40");
  EXPECT_EQ(profile_key("app", 39.6), "app@40");
}

struct TrainerFixture : ::testing::Test {
  prof::ProfileStore store;
  BuilderConfig cfg = small_builder_config();
};

TEST_F(TrainerFixture, EnsureProfileCachesByKey) {
  const auto app = wl::iperf(0.2);
  const auto key = ensure_profile(store, app, 0.0, cfg.profiler);
  EXPECT_EQ(key, "iperf");
  EXPECT_TRUE(store.contains("iperf"));
  const std::size_t before = store.size();
  ensure_profile(store, app, 0.0, cfg.profiler);  // cached, no re-profile
  EXPECT_EQ(store.size(), before);
}

TEST_F(TrainerFixture, RunnerMeasuresLsScenario) {
  DatasetBuilder builder(&store, cfg, 11);
  const auto spec = builder.sample_spec(ColocationClass::kLsScBg);
  ScenarioRunner runner(&store, cfg.runner);
  const auto outcome = runner.run(spec);
  EXPECT_GT(outcome.mean_ipc, 0.0);
  EXPECT_FALSE(outcome.window_ipc.empty());
  EXPECT_EQ(outcome.scenario.workloads.size(), spec.members.size());
  EXPECT_NO_THROW(outcome.scenario.validate());
}

TEST_F(TrainerFixture, RunnerMeasuresScScenario) {
  DatasetBuilder builder(&store, cfg, 13);
  // Sample until the target is a genuine SC job (pool contains BG too).
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto spec = builder.sample_spec(ColocationClass::kScScBg);
    ScenarioRunner runner(&store, cfg.runner);
    const auto outcome = runner.run(spec);
    if (outcome.jct_s > 0.0) {
      EXPECT_TRUE(outcome.completed);
      EXPECT_GT(outcome.jct_s, 0.5);
      return;
    }
  }
  FAIL() << "no SC scenario produced a JCT";
}

TEST_F(TrainerFixture, BuildProducesLabelledSamples) {
  DatasetBuilder builder(&store, cfg, 17);
  BuildRequest request;
  request.cls = ColocationClass::kLsScBg;
  request.qos = QosKind::kIpc;
  request.count = 4;
  const auto samples = builder.build(request);
  ASSERT_GE(samples.size(), 3u);
  const auto dim = builder.encoder().dimension();
  for (const auto& s : samples) {
    EXPECT_EQ(s.features.size(), dim);
    EXPECT_FALSE(s.labels.empty());
    for (double l : s.labels) EXPECT_GT(l, 0.0);
  }
  const auto flat = DatasetBuilder::flatten(samples, dim);
  EXPECT_GE(flat.size(), samples.size());
}

TEST_F(TrainerFixture, PredictorLearnsIpcWithinTolerance) {
  DatasetBuilder builder(&store, cfg, 19);
  BuildRequest request;
  request.cls = ColocationClass::kLsScBg;
  request.qos = QosKind::kIpc;
  request.count = 12;
  auto samples = builder.build(request);
  ASSERT_GE(samples.size(), 8u);
  // Split scenarios (not windows) into train/test to avoid leakage.
  const std::size_t cut = samples.size() - 3;
  PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  pcfg.model = ModelKind::kIRFR;
  GsightPredictor predictor(pcfg);
  ml::Dataset train(predictor.encoder().dimension());
  for (std::size_t i = 0; i < cut; ++i) {
    for (double l : samples[i].labels) train.add(samples[i].features, l);
  }
  predictor.train(train);
  EXPECT_GT(predictor.samples_seen(), 0u);

  std::vector<double> truth, pred;
  for (std::size_t i = cut; i < samples.size(); ++i) {
    const double mean_label = stats::mean(samples[i].labels);
    truth.push_back(mean_label);
    pred.push_back(predictor.predict(samples[i].outcome.scenario));
  }
  // Coarse bound for a tiny training set (9 scenarios); the benches verify
  // the paper's 1.71% at full scale.
  EXPECT_LT(ml::mape(truth, pred), 50.0);
}

TEST_F(TrainerFixture, ObserveFlushesInBatches) {
  PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  pcfg.update_batch = 4;
  GsightPredictor predictor(pcfg);

  DatasetBuilder builder(&store, cfg, 23);
  const auto spec = builder.sample_spec(ColocationClass::kLsLs);
  ScenarioRunner runner(&store, cfg.runner);
  const auto outcome = runner.run(spec);
  ASSERT_GE(outcome.window_ipc.size(), 1u);
  for (int i = 0; i < 3; ++i) {
    predictor.observe(outcome.scenario, outcome.window_ipc[0]);
  }
  EXPECT_EQ(predictor.samples_seen(), 0u);  // below batch threshold
  predictor.observe(outcome.scenario, outcome.window_ipc[0]);
  EXPECT_EQ(predictor.samples_seen(), 4u);  // auto-flushed
  predictor.observe(outcome.scenario, outcome.window_ipc[0]);
  predictor.flush();
  EXPECT_EQ(predictor.samples_seen(), 5u);
}

TEST_F(TrainerFixture, TrainRejectsWrongDimension) {
  GsightPredictor predictor;
  ml::Dataset bad(7);
  bad.add(std::vector<double>(7, 0.0), 1.0);
  EXPECT_THROW(predictor.train(bad), std::invalid_argument);
}

TEST(ModelFactory, AllKindsConstruct) {
  for (auto kind : {ModelKind::kIRFR, ModelKind::kIKNN, ModelKind::kILR,
                    ModelKind::kISVR, ModelKind::kIMLP}) {
    const auto model = make_model(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), to_string(kind));
  }
}

TEST(ColocationClassNames, Stable) {
  EXPECT_STREQ(to_string(ColocationClass::kLsLs), "LS+LS");
  EXPECT_STREQ(to_string(ColocationClass::kLsScBg), "LS+SC/BG");
  EXPECT_STREQ(to_string(ColocationClass::kScScBg), "SC+SC/BG");
}

}  // namespace
}  // namespace gsight::core
