// Zero-copy batched prediction: GsightPredictor::predict_batch writes
// scenario codes straight into rows of a reused scratch Matrix
// (encode_into) and issues one batched forest call. The contract is
// bit-identity with the per-scenario predict() loop — across empty
// batches, single scenarios, batches far larger than the scratch's
// initial capacity, and repeated calls that reuse the same scratch.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "core/encoder.hpp"
#include "core/predictor.hpp"

namespace gsight::core {
namespace {

prof::AppProfile make_profile(const std::string& name, std::size_t fns,
                              double ipc_base) {
  prof::AppProfile p;
  p.app_name = name;
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    fp.app_name = name;
    fp.fn_name = name + "-fn" + std::to_string(i);
    for (std::size_t k = 0; k < prof::kMetricCount; ++k) {
      fp.metrics[k] = ipc_base + static_cast<double>(i) +
                      0.01 * static_cast<double>(k);
    }
    fp.demand.cores = 1.0;
    fp.mem_alloc_gb = 0.5;
    fp.solo_duration_s = 0.01;
    fp.solo_ipc = ipc_base;
    p.functions.push_back(fp);
  }
  return p;
}

struct PredictorBatchFixture : ::testing::Test {
  prof::AppProfile target = make_profile("target", 2, 1.2);
  prof::AppProfile corunner = make_profile("corunner", 1, 2.1);

  EncoderConfig encoder_config() const {
    EncoderConfig cfg;
    cfg.servers = 3;
    cfg.max_workloads = 2;
    return cfg;
  }

  /// A family of distinct scenarios: placement and temporal fields vary
  /// with `i`, so batch rows are not degenerate duplicates.
  Scenario scenario(std::size_t i) const {
    Scenario s;
    s.servers = 3;
    s.workloads.push_back({&target, {i % 3, (i + 1) % 3}, 0.0, 0.0});
    s.workloads.push_back({&corunner,
                           {(i / 3) % 3},
                           static_cast<double>(i % 17),
                           10.0 + static_cast<double>(i % 29)});
    return s;
  }

  GsightPredictor trained_predictor() const {
    PredictorConfig cfg;
    cfg.encoder = encoder_config();
    GsightPredictor predictor(cfg);
    for (std::size_t i = 0; i < 24; ++i) {
      predictor.observe(scenario(i), 1.0 + 0.05 * static_cast<double>(i % 7));
    }
    predictor.flush();
    return predictor;
  }
};

TEST_F(PredictorBatchFixture, EmptyBatchReturnsEmpty) {
  const auto predictor = trained_predictor();
  EXPECT_TRUE(predictor.predict_batch({}).empty());
}

TEST_F(PredictorBatchFixture, SingleScenarioMatchesPredict) {
  const auto predictor = trained_predictor();
  const Scenario s = scenario(5);
  const auto batch = predictor.predict_batch(std::span(&s, 1));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], predictor.predict(s));
}

TEST_F(PredictorBatchFixture, LargeBatchBitIdenticalToSingles) {
  // > 4096 rows: several scratch-Matrix growth steps and every gather
  // block shape (full 8-row blocks plus a ragged tail).
  const auto predictor = trained_predictor();
  std::vector<Scenario> scenarios;
  scenarios.reserve(4100);
  for (std::size_t i = 0; i < 4100; ++i) scenarios.push_back(scenario(i));
  const auto batch = predictor.predict_batch(scenarios);
  ASSERT_EQ(batch.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_EQ(batch[i], predictor.predict(scenarios[i])) << "row " << i;
  }
}

TEST_F(PredictorBatchFixture, RepeatedCallsReuseScratchWithoutDrift) {
  // Shrinking then growing batches through one predictor: the reused
  // scratch must never leak a previous batch's rows into the next.
  const auto predictor = trained_predictor();
  std::vector<Scenario> big;
  for (std::size_t i = 0; i < 50; ++i) big.push_back(scenario(i));
  const auto first = predictor.predict_batch(big);
  std::vector<Scenario> small(big.begin() + 7, big.begin() + 10);
  const auto mid = predictor.predict_batch(small);
  ASSERT_EQ(mid.size(), 3u);
  for (std::size_t i = 0; i < mid.size(); ++i) {
    EXPECT_EQ(mid[i], first[7 + i]);
  }
  EXPECT_EQ(predictor.predict_batch(big), first);
}

TEST_F(PredictorBatchFixture, EncodeIntoMatchesEncode) {
  const Encoder encoder(encoder_config());
  EncodeScratch scratch;
  std::vector<double> out(encoder.dimension(), -1.0);
  for (std::size_t i = 0; i < 12; ++i) {
    const Scenario s = scenario(i);
    encoder.encode_into(s, scratch, out);
    EXPECT_EQ(out, encoder.encode(s)) << "scenario " << i;
  }
}

TEST_F(PredictorBatchFixture, EncodeIntoRejectsWrongSpanSize) {
  const Encoder encoder(encoder_config());
  EncodeScratch scratch;
  std::vector<double> wrong(encoder.dimension() + 1, 0.0);
  EXPECT_THROW(encoder.encode_into(scenario(0), scratch, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace gsight::core
