#include <gtest/gtest.h>

#include "core/encoder.hpp"

namespace gsight::core {
namespace {

// Hand-built profiles (no simulation needed for coding tests).
prof::AppProfile make_profile(const std::string& name, std::size_t fns,
                              double ipc_base) {
  prof::AppProfile p;
  p.app_name = name;
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    fp.app_name = name;
    fp.fn_name = name + "-fn" + std::to_string(i);
    for (std::size_t k = 0; k < prof::kMetricCount; ++k) {
      fp.metrics[k] = ipc_base + static_cast<double>(i) +
                      0.01 * static_cast<double>(k);
    }
    fp.demand.cores = 1.0 + static_cast<double>(i);
    fp.mem_alloc_gb = 0.5;
    fp.solo_duration_s = 0.01;
    fp.solo_ipc = ipc_base;
    p.functions.push_back(fp);
  }
  return p;
}

struct EncoderFixture : ::testing::Test {
  prof::AppProfile a = make_profile("a", 3, 1.0);
  prof::AppProfile b = make_profile("b", 2, 2.0);

  Scenario scenario(std::size_t servers = 4) {
    Scenario s;
    s.servers = servers;
    s.workloads.push_back({&a, {0, 1, 1}, 0.0, 0.0});
    s.workloads.push_back({&b, {1, 3}, 12.0, 200.0});
    return s;
  }
};

TEST_F(EncoderFixture, ScenarioValidation) {
  EXPECT_NO_THROW(scenario().validate());
  Scenario bad = scenario();
  bad.workloads[0].fn_to_server = {0};  // size mismatch
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  Scenario oob = scenario();
  oob.workloads[1].fn_to_server = {1, 9};  // server out of range
  EXPECT_THROW(oob.validate(), std::invalid_argument);
  Scenario nop;
  EXPECT_THROW(nop.validate(), std::invalid_argument);
  Scenario noprof = scenario();
  noprof.workloads[0].profile = nullptr;
  EXPECT_THROW(noprof.validate(), std::invalid_argument);
}

TEST_F(EncoderFixture, UtilizationCodeZeroRowsWhereAbsent) {
  const auto s = scenario();
  const auto u = utilization_code(s.workloads[1], 4);
  ASSERT_EQ(u.size(), 4 * kCodeWidth);
  // Workload b occupies servers 1 and 3; rows 0 and 2 must be zero.
  for (std::size_t k = 0; k < kCodeWidth; ++k) {
    EXPECT_DOUBLE_EQ(u[0 * kCodeWidth + k], 0.0);
    EXPECT_DOUBLE_EQ(u[2 * kCodeWidth + k], 0.0);
  }
  // Occupied rows carry the selected solo metrics.
  const auto sel0 = prof::select(b.functions[0].metrics);
  for (std::size_t k = 0; k < kCodeWidth; ++k) {
    EXPECT_DOUBLE_EQ(u[1 * kCodeWidth + k], sel0[k]);
  }
}

TEST_F(EncoderFixture, VirtualLargerFunctionAveragesColocated) {
  // Workload a puts fn1 and fn2 both on server 1 -> row 1 is their mean
  // (the "virtual larger function" of §3.3).
  const auto s = scenario();
  const auto u = utilization_code(s.workloads[0], 4);
  const auto sel1 = prof::select(a.functions[1].metrics);
  const auto sel2 = prof::select(a.functions[2].metrics);
  for (std::size_t k = 0; k < kCodeWidth; ++k) {
    EXPECT_NEAR(u[1 * kCodeWidth + k], 0.5 * (sel1[k] + sel2[k]), 1e-12);
  }
}

TEST_F(EncoderFixture, AllocationCodeCarriesDemand) {
  const auto s = scenario();
  const auto r = allocation_code(s.workloads[0], 4);
  // fn0 (cores=1) on server 0: first entry of row 0 is the core demand.
  EXPECT_DOUBLE_EQ(r[0 * kCodeWidth + 0], 1.0);
  // Row 1 averages fn1 (cores=2) and fn2 (cores=3).
  EXPECT_DOUBLE_EQ(r[1 * kCodeWidth + 0], 2.5);
}

TEST_F(EncoderFixture, DimensionFormula) {
  for (const auto& [n, s] : {std::pair<std::size_t, std::size_t>{10, 8},
                             {4, 4},
                             {2, 16}}) {
    EncoderConfig cfg;
    cfg.max_workloads = n;
    cfg.servers = s;
    EXPECT_EQ(Encoder(cfg).dimension(), 32 * n * s + 2 * n);
  }
  // The paper's configuration: n=10, S=8 -> 2 580 dims (§6.4).
  EncoderConfig paper;
  EXPECT_EQ(Encoder(paper).dimension(), 2580u);
}

TEST_F(EncoderFixture, EncodePadsEmptySlots) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 3;
  cfg.servers = 4;
  const Encoder enc(cfg);
  const auto x = enc.encode(scenario());
  ASSERT_EQ(x.size(), enc.dimension());
  // Slot 2 (empty) must be all zeros: it spans [2*2*4*16, 3*2*4*16).
  const std::size_t slot_w = 2 * 4 * kCodeWidth;
  for (std::size_t i = 2 * slot_w; i < 3 * slot_w; ++i) {
    EXPECT_DOUBLE_EQ(x[i], 0.0) << i;
  }
}

TEST_F(EncoderFixture, TemporalCodesAtTail) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 3;
  cfg.servers = 4;
  const Encoder enc(cfg);
  const auto x = enc.encode(scenario());
  const std::size_t base = 2 * 3 * 4 * kCodeWidth;
  // D vector: [0, 12, 0(pad)]; T vector: [0, 200, 0(pad)].
  EXPECT_DOUBLE_EQ(x[base + 0], 0.0);
  EXPECT_DOUBLE_EQ(x[base + 1], 12.0);
  EXPECT_DOUBLE_EQ(x[base + 2], 0.0);
  EXPECT_DOUBLE_EQ(x[base + 3], 0.0);
  EXPECT_DOUBLE_EQ(x[base + 4], 200.0);
  EXPECT_DOUBLE_EQ(x[base + 5], 0.0);
}

TEST_F(EncoderFixture, TemporalAblationZeroesDandT) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 3;
  cfg.servers = 4;
  cfg.temporal_coding = false;
  const Encoder enc(cfg);
  const auto x = enc.encode(scenario());
  const std::size_t base = 2 * 3 * 4 * kCodeWidth;
  for (std::size_t i = base; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i], 0.0);
  }
}

TEST_F(EncoderFixture, SpatialAblationCollapsesRows) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 2;
  cfg.servers = 4;
  cfg.spatial_coding = false;
  const Encoder enc(cfg);
  const auto x = enc.encode(scenario());
  // For workload b, the U matrix occupies the second half of slot 1's
  // block; rows 1..3 must be zero, row 0 holds the aggregate.
  const std::size_t slot1 = 2 * 4 * kCodeWidth;       // slot 1 offset
  const std::size_t u_off = slot1 + 4 * kCodeWidth;   // after R matrix
  bool row0_nonzero = false;
  for (std::size_t k = 0; k < kCodeWidth; ++k) {
    if (x[u_off + k] != 0.0) row0_nonzero = true;
  }
  EXPECT_TRUE(row0_nonzero);
  for (std::size_t row = 1; row < 4; ++row) {
    for (std::size_t k = 0; k < kCodeWidth; ++k) {
      EXPECT_DOUBLE_EQ(x[u_off + row * kCodeWidth + k], 0.0);
    }
  }
}

TEST_F(EncoderFixture, TooManyWorkloadsRejected) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 1;
  cfg.servers = 4;
  EXPECT_THROW(Encoder(cfg).encode(scenario()), std::invalid_argument);
}

TEST_F(EncoderFixture, ServerMismatchRejected) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 4;
  cfg.servers = 8;
  EXPECT_THROW(Encoder(cfg).encode(scenario(4)), std::invalid_argument);
}

TEST_F(EncoderFixture, PlacementChangesCode) {
  EncoderConfig cfg;
  cfg.canonical_server_order = false;  // positional assertions below
  cfg.max_workloads = 2;
  cfg.servers = 4;
  const Encoder enc(cfg);
  auto s1 = scenario();
  auto s2 = scenario();
  s2.workloads[1].fn_to_server = {2, 2};  // moved
  EXPECT_NE(enc.encode(s1), enc.encode(s2));
}

TEST_F(EncoderFixture, CanonicalOrderIsServerPermutationInvariant) {
  EncoderConfig cfg;
  cfg.max_workloads = 2;
  cfg.servers = 4;
  cfg.canonical_server_order = true;
  const Encoder enc(cfg);
  // Relabel servers 0..3 -> 2,3,0,1 consistently in both workloads: the
  // canonical code must be identical (server identity is a nuisance).
  const std::size_t perm[4] = {2, 3, 0, 1};
  auto s1 = scenario();
  auto s2 = scenario();
  for (auto& w : s2.workloads) {
    for (auto& srv : w.fn_to_server) srv = perm[srv];
  }
  EXPECT_EQ(enc.encode(s1), enc.encode(s2));
}

TEST_F(EncoderFixture, CanonicalOrderStillSeparatesOverlapStructure) {
  EncoderConfig cfg;
  cfg.max_workloads = 2;
  cfg.servers = 4;
  cfg.canonical_server_order = true;
  const Encoder enc(cfg);
  // b colocated with a's fn0 vs b on an empty server: structurally
  // different, so codes must differ even after canonicalisation.
  auto s_on = scenario();
  s_on.workloads[1].fn_to_server = {0, 0};
  auto s_off = scenario();
  s_off.workloads[1].fn_to_server = {2, 2};
  EXPECT_NE(enc.encode(s_on), enc.encode(s_off));
}

}  // namespace
}  // namespace gsight::core
