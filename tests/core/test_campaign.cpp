// core::CampaignRunner — deterministic parallel fan-out. The load-bearing
// property is bit-identity: a campaign's output stream must not depend on
// the thread count, only on the root seed. The twin-run tests execute the
// same work serially and on a pool and compare every double bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/campaign.hpp"
#include "core/trainer.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/suite.hpp"

namespace gsight::core {
namespace {

TEST(CampaignRunner, ResultsArriveInIndexOrderWithDerivedSeeds) {
  CampaignOptions options;
  options.threads = 4;
  CampaignRunner runner(options);
  const std::uint64_t root = 77;
  const auto out = runner.map<std::pair<std::size_t, std::uint64_t>>(
      32, root, [](std::size_t i, std::uint64_t seed) {
        return std::make_pair(i, seed);
      });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, i);
    EXPECT_EQ(out[i].second, stats::SeedStream::derive(root, i));
  }
}

TEST(CampaignRunner, SerialAndParallelMapsAgree) {
  auto task = [](std::size_t i, std::uint64_t seed) {
    return static_cast<double>(seed % 1000003) + static_cast<double>(i);
  };
  CampaignOptions serial;
  serial.threads = 1;
  CampaignOptions parallel;
  parallel.threads = 8;
  const auto a = CampaignRunner(serial).map<double>(100, 5, task);
  const auto b = CampaignRunner(parallel).map<double>(100, 5, task);
  EXPECT_EQ(a, b);
}

TEST(CampaignRunner, ProgressSeesEveryCompletion) {
  std::atomic<std::size_t> calls{0};
  std::size_t last_total = 0;
  CampaignOptions options;
  options.threads = 4;
  options.progress = [&](std::size_t done, std::size_t total) {
    ++calls;
    last_total = total;
    EXPECT_GE(done, 1u);
    EXPECT_LE(done, total);
  };
  CampaignRunner runner(options);
  runner.map<int>(25, 1, [](std::size_t, std::uint64_t) { return 0; });
  EXPECT_EQ(calls.load(), 25u);
  EXPECT_EQ(last_total, 25u);
}

TEST(CampaignRunner, TaskExceptionPropagates) {
  CampaignOptions options;
  options.threads = 4;
  CampaignRunner runner(options);
  EXPECT_THROW(runner.map<int>(8, 3,
                               [](std::size_t i, std::uint64_t) -> int {
                                 if (i == 5) {
                                   throw std::runtime_error("task 5 failed");
                                 }
                                 return 0;
                               }),
               std::runtime_error);
}

BuilderConfig tiny_builder_config() {
  BuilderConfig cfg;
  cfg.runner.servers = 3;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.runner.warmup_s = 3.0;
  cfg.runner.ls_measure_s = 10.0;
  cfg.runner.label_window_s = 2.5;
  cfg.encoder.servers = 3;
  cfg.encoder.max_workloads = 3;
  cfg.ls_qps_levels = {40.0};
  cfg.min_workloads = 2;
  cfg.max_workloads = 2;
  cfg.sc_scale = 0.06;
  cfg.profiler.ls_profile_s = 12.0;
  cfg.profiler.server = sim::ServerConfig::socket();
  return cfg;
}

std::vector<ScenarioSamples> build_twin(std::size_t threads) {
  prof::ProfileStore store;
  DatasetBuilder builder(&store, tiny_builder_config(), /*seed=*/23);
  BuildRequest request;
  request.cls = ColocationClass::kLsScBg;
  request.qos = QosKind::kIpc;
  request.count = 6;
  request.campaign.threads = threads;
  return builder.build(request);
}

void expect_bit_identical(const std::vector<ScenarioSamples>& a,
                          const std::vector<ScenarioSamples>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    // Exact double equality throughout: the parallel stream must be the
    // serial stream, not a statistical twin of it.
    EXPECT_EQ(a[i].features, b[i].features);
    EXPECT_EQ(a[i].labels, b[i].labels);
    const RunOutcome& x = a[i].outcome;
    const RunOutcome& y = b[i].outcome;
    EXPECT_EQ(x.mean_ipc, y.mean_ipc);
    EXPECT_EQ(x.p99_latency_s, y.p99_latency_s);
    EXPECT_EQ(x.jct_s, y.jct_s);
    EXPECT_EQ(x.window_ipc, y.window_ipc);
    EXPECT_EQ(x.window_p99, y.window_p99);
    EXPECT_EQ(x.window_ipc_p99, y.window_ipc_p99);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.scenario.workloads.size(), y.scenario.workloads.size());
  }
}

TEST(CampaignTwinRun, DatasetBuildIsThreadCountInvariant) {
  const auto serial = build_twin(1);
  const auto parallel = build_twin(8);
  ASSERT_FALSE(serial.empty());
  expect_bit_identical(serial, parallel);
}

TEST(CampaignTwinRun, PinnedRootSeedReproducesAcrossBuilders) {
  // With campaign.root_seed pinned, two builders with the same
  // constructor seed produce the same stream even though the second
  // builder's internal stream position would otherwise differ.
  prof::ProfileStore store;
  auto build_once = [&store](std::size_t threads) {
    DatasetBuilder builder(&store, tiny_builder_config(), /*seed=*/29);
    BuildRequest request;
    request.cls = ColocationClass::kLsScBg;
    request.qos = QosKind::kIpc;
    request.count = 4;
    request.campaign.threads = threads;
    request.campaign.root_seed = 0xC0FFEE;
    return builder.build(request);
  };
  expect_bit_identical(build_once(1), build_once(4));
}

TEST(CampaignProfileAll, ParallelMatchesSerialBatch) {
  prof::SoloProfilerConfig cfg;
  cfg.server = sim::ServerConfig::socket();
  cfg.ls_profile_s = 12.0;

  std::vector<prof::ProfileRequest> requests;
  requests.push_back(prof::ProfileRequest{wl::iperf(0.2)});
  requests.push_back(prof::ProfileRequest{wl::float_operation()});
  requests.push_back(prof::ProfileRequest{wl::matmul(0.3)});

  const prof::SoloProfiler profiler(cfg);
  const prof::ProfileStore serial = profiler.profile_all(requests);

  CampaignOptions options;
  options.threads = 3;
  const prof::ProfileStore parallel = profile_all(cfg, requests, options);

  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, expected] : serial.all()) {
    ASSERT_TRUE(parallel.contains(name)) << name;
    const prof::AppProfile& got = parallel.get(name);
    EXPECT_EQ(got.solo_mean_ipc, expected.solo_mean_ipc) << name;
    EXPECT_EQ(got.solo_jct_s, expected.solo_jct_s) << name;
    EXPECT_EQ(got.solo_e2e_p99_s, expected.solo_e2e_p99_s) << name;
    ASSERT_EQ(got.functions.size(), expected.functions.size()) << name;
    for (std::size_t fn = 0; fn < got.functions.size(); ++fn) {
      EXPECT_EQ(got.functions[fn].metrics, expected.functions[fn].metrics)
          << name << " fn " << fn;
      EXPECT_EQ(got.functions[fn].solo_ipc, expected.functions[fn].solo_ipc)
          << name << " fn " << fn;
    }
  }
}

}  // namespace
}  // namespace gsight::core
