#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

// y = step function on feature 0 — a single split should nail it.
Dataset step_data(std::size_t n, stats::Rng& rng) {
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    d.add(std::vector<double>{x0, rng.uniform(), rng.uniform()},
          x0 > 0.2 ? 5.0 : -5.0);
  }
  return d;
}

// Smooth nonlinear target with two informative + two noise features.
Dataset smooth_data(std::size_t n, stats::Rng& rng, double noise = 0.0) {
  Dataset d(4);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    const double y = std::sin(a) + 0.5 * b * b + noise * rng.normal();
    d.add(std::vector<double>{a, b, rng.uniform(), rng.uniform()}, y);
  }
  return d;
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  stats::Rng rng(1);
  const auto d = step_data(500, rng);
  TreeConfig cfg;
  cfg.max_features = 3;  // all features
  DecisionTreeRegressor tree(cfg);
  tree.fit(d, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.9, 0.5, 0.5}), 5.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{-0.9, 0.5, 0.5}), -5.0, 1e-9);
}

TEST(DecisionTree, ConstantTargetGivesSingleLeaf) {
  Dataset d(2);
  stats::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    d.add(std::vector<double>{rng.uniform(), rng.uniform()}, 3.0);
  }
  DecisionTreeRegressor tree;
  tree.fit(d, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.1, 0.9}), 3.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  stats::Rng rng(3);
  const auto d = smooth_data(800, rng);
  TreeConfig cfg;
  cfg.max_depth = 3;
  cfg.max_features = 4;
  DecisionTreeRegressor tree(cfg);
  tree.fit(d, rng);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(DecisionTree, MinSamplesLeafHonored) {
  stats::Rng rng(4);
  const auto d = smooth_data(100, rng);
  TreeConfig cfg;
  cfg.min_samples_leaf = 20;
  cfg.max_features = 4;
  DecisionTreeRegressor tree(cfg);
  tree.fit(d, rng);
  // With >= 20 samples per leaf and 100 samples there can be at most 5
  // leaves => at most 9 nodes.
  EXPECT_LE(tree.node_count(), 9u);
}

TEST(DecisionTree, ImportanceOnInformativeFeature) {
  stats::Rng rng(5);
  const auto d = step_data(1000, rng);
  TreeConfig cfg;
  cfg.max_features = 3;
  DecisionTreeRegressor tree(cfg);
  tree.fit(d, rng);
  const auto& imp = tree.importance();
  EXPECT_GT(imp[0], imp[1] * 10);
  EXPECT_GT(imp[0], imp[2] * 10);
}

TEST(DecisionTree, FitOnBootstrapIndices) {
  stats::Rng rng(6);
  const auto d = step_data(200, rng);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 300; ++i) rows.push_back(rng.uniform_index(200));
  DecisionTreeRegressor tree;
  tree.fit(d, rows, rng);
  EXPECT_TRUE(tree.fitted());
}

class SplitModeTest : public ::testing::TestWithParam<SplitMode> {};

TEST_P(SplitModeTest, SmoothRegressionGeneralizes) {
  stats::Rng rng(7);
  const auto train = smooth_data(2000, rng);
  const auto test = smooth_data(400, rng);
  ForestConfig cfg;
  cfg.n_trees = 40;
  cfg.tree.split_mode = GetParam();
  cfg.tree.max_features = 2;
  RandomForestRegressor forest(cfg);
  forest.fit(train, rng);
  std::vector<double> truth, pred;
  for (std::size_t i = 0; i < test.size(); ++i) {
    truth.push_back(test.y(i));
    pred.push_back(forest.predict(test.x(i)));
  }
  EXPECT_LT(rmse(truth, pred), 0.35);
  EXPECT_GT(r2(truth, pred), 0.9);
}

INSTANTIATE_TEST_SUITE_P(BothModes, SplitModeTest,
                         ::testing::Values(SplitMode::kBest,
                                           SplitMode::kRandom));

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  stats::Rng rng(8);
  const auto train = smooth_data(1500, rng, /*noise=*/0.5);
  const auto test = smooth_data(300, rng, /*noise=*/0.0);

  TreeConfig tcfg;
  tcfg.max_features = 4;
  DecisionTreeRegressor tree(tcfg);
  tree.fit(train, rng);

  ForestConfig fcfg;
  fcfg.n_trees = 50;
  RandomForestRegressor forest(fcfg);
  forest.fit(train, rng);

  std::vector<double> truth, tree_pred, forest_pred;
  for (std::size_t i = 0; i < test.size(); ++i) {
    truth.push_back(test.y(i));
    tree_pred.push_back(tree.predict(test.x(i)));
    forest_pred.push_back(forest.predict(test.x(i)));
  }
  EXPECT_LT(rmse(truth, forest_pred), rmse(truth, tree_pred));
}

TEST(RandomForest, ImportanceNormalizedAndInformative) {
  stats::Rng rng(9);
  const auto d = smooth_data(1500, rng);
  ForestConfig cfg;
  cfg.n_trees = 30;
  RandomForestRegressor forest(cfg);
  forest.fit(d, rng);
  const auto imp = forest.importance();
  ASSERT_EQ(imp.size(), 4u);
  double sum = 0.0;
  for (double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.8);  // informative features dominate
}

TEST(RandomForest, UnfittedPredictsZero) {
  RandomForestRegressor forest;
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{1.0}), 0.0);
}

TEST(RandomForest, RefreshTreesTracksDrift) {
  stats::Rng rng(10);
  // Train on y = +x, then refresh trees with y = -x data; predictions
  // must cross toward the new regime as more trees refresh.
  Dataset pos(1), neg(1);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    pos.add(std::vector<double>{x}, x);
    neg.add(std::vector<double>{x}, -x);
  }
  ForestConfig cfg;
  cfg.n_trees = 30;
  cfg.tree.max_features = 1;
  RandomForestRegressor forest(cfg);
  forest.fit(pos, rng);
  const double before = forest.predict(std::vector<double>{0.8});
  EXPECT_GT(before, 0.5);
  for (int round = 0; round < 12; ++round) {
    forest.refresh_trees(neg, 10, rng);
  }
  const double after = forest.predict(std::vector<double>{0.8});
  EXPECT_LT(after, -0.5);
}

TEST(RandomForest, RefreshOnUnfittedActsAsFit) {
  stats::Rng rng(11);
  const auto d = step_data(300, rng);
  RandomForestRegressor forest;
  forest.refresh_trees(d, 5, rng);
  EXPECT_TRUE(forest.fitted());
}

}  // namespace
}  // namespace gsight::ml
