#include <gtest/gtest.h>

#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

TEST(RidgeClosedForm, ExactOnNoiselessLinear) {
  stats::Rng rng(1);
  Dataset d(2);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-5.0, 5.0);
    const double b = rng.uniform(-5.0, 5.0);
    d.add(std::vector<double>{a, b}, 2.0 * a - 3.0 * b + 7.0);
  }
  RidgeClosedForm ridge(1e-8);
  ridge.fit(d);
  ASSERT_EQ(ridge.weights().size(), 2u);
  EXPECT_NEAR(ridge.weights()[0], 2.0, 1e-4);
  EXPECT_NEAR(ridge.weights()[1], -3.0, 1e-4);
  EXPECT_NEAR(ridge.bias(), 7.0, 1e-3);
  EXPECT_NEAR(ridge.predict(std::vector<double>{1.0, 1.0}), 6.0, 1e-3);
}

TEST(RidgeClosedForm, RegularizationShrinksWeights) {
  stats::Rng rng(2);
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    d.add(std::vector<double>{x}, 4.0 * x);
  }
  RidgeClosedForm weak(1e-8), strong(1e4);
  weak.fit(d);
  strong.fit(d);
  EXPECT_GT(std::abs(weak.weights()[0]), std::abs(strong.weights()[0]) * 5);
}

TEST(RidgeClosedForm, HandlesCollinearFeatures) {
  stats::Rng rng(3);
  Dataset d(2);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    d.add(std::vector<double>{x, x}, 2.0 * x);  // perfectly collinear
  }
  RidgeClosedForm ridge(1e-3);
  ridge.fit(d);
  // Must not blow up; combined effect ~2.
  const double p = ridge.predict(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(p, 2.0, 0.1);
}

TEST(RidgeClosedForm, UnfittedPredictsZero) {
  RidgeClosedForm ridge;
  EXPECT_FALSE(ridge.fitted());
  EXPECT_DOUBLE_EQ(ridge.predict(std::vector<double>{1.0}), 0.0);
}

TEST(RidgeClosedForm, EmptyFitIsNoop) {
  RidgeClosedForm ridge;
  ridge.fit(Dataset(3));
  EXPECT_FALSE(ridge.fitted());
}

TEST(RidgeClosedForm, NoisyDataReasonableR2) {
  stats::Rng rng(4);
  Dataset train(3), test(3);
  auto gen = [&](Dataset& d, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(-1, 1), b = rng.uniform(-1, 1),
                   c = rng.uniform(-1, 1);
      d.add(std::vector<double>{a, b, c},
            a + 2.0 * b - c + 0.1 * rng.normal());
    }
  };
  gen(train, 500);
  gen(test, 200);
  RidgeClosedForm ridge(1e-4);
  ridge.fit(train);
  std::vector<double> pred;
  for (std::size_t i = 0; i < test.size(); ++i) {
    pred.push_back(ridge.predict(test.x(i)));
  }
  EXPECT_GT(r2(test.targets(), pred), 0.95);
}

}  // namespace
}  // namespace gsight::ml
