// Golden equivalence between the legacy row-major training kernel and the
// columnar fast path (TreeKernel::kColumnar): same splits, same
// tie-breaking, same node arrays, same importances — bit-identical, not
// just statistically close. Serialised dumps are compared because
// save() prints doubles at max_digits10, which round-trips every distinct
// double to a distinct string. Also covers the batched-inference
// contract: predict_batch must equal N single predict() calls exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <vector>

#include "ml/incremental_forest.hpp"
#include "ml/random_forest.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

std::string dump(const DecisionTreeRegressor& tree) {
  std::ostringstream out;
  tree.save(out);
  return out.str();
}

std::string dump(const RandomForestRegressor& forest) {
  std::ostringstream out;
  forest.save(out);
  return out.str();
}

// Tie-heavy dataset: quantised features (many equal values per column), a
// constant column, and duplicated rows — the cases where split
// tie-breaking and accumulation order can silently diverge.
Dataset tie_heavy_data(std::size_t n, std::size_t dims, stats::Rng& rng) {
  Dataset d(dims);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < dims; ++f) {
      x[f] = f == 0 ? 1.0  // constant feature
                    : static_cast<double>(rng.uniform_index(5));
    }
    const double y = x[1] * 2.0 - x[2] + 0.25 * rng.normal();
    d.add(x, y);
    if (i % 7 == 0) d.add(x, y);  // exact duplicate rows
  }
  return d;
}

Dataset smooth_data(std::size_t n, std::size_t dims, stats::Rng& rng) {
  Dataset d(dims);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    d.add(x, x[0] * x[0] - 3.0 * x[1] + rng.normal());
  }
  return d;
}

TreeConfig tree_config(SplitMode mode, TreeKernel kernel) {
  TreeConfig cfg;
  cfg.split_mode = mode;
  cfg.kernel = kernel;
  cfg.max_features = 3;
  return cfg;
}

class SplitModeEquivalence : public ::testing::TestWithParam<SplitMode> {};

TEST_P(SplitModeEquivalence, ForestTreesBitIdenticalOnTies) {
  stats::Rng data_rng(11);
  const auto data = tie_heavy_data(300, 6, data_rng);
  ForestConfig legacy_cfg;
  legacy_cfg.n_trees = 12;
  legacy_cfg.tree = tree_config(GetParam(), TreeKernel::kLegacy);
  ForestConfig fast_cfg = legacy_cfg;
  fast_cfg.tree.kernel = TreeKernel::kColumnar;

  RandomForestRegressor legacy(legacy_cfg), fast(fast_cfg);
  stats::Rng rng_a(42), rng_b(42);
  legacy.fit(data, rng_a);
  fast.fit(data, rng_b);
  EXPECT_EQ(dump(legacy), dump(fast));

  // Importances feed Figure 8; they must match to the bit as well.
  const auto imp_a = legacy.importance();
  const auto imp_b = fast.importance();
  ASSERT_EQ(imp_a.size(), imp_b.size());
  for (std::size_t i = 0; i < imp_a.size(); ++i) {
    EXPECT_EQ(imp_a[i], imp_b[i]) << "importance[" << i << "]";
  }
}

TEST_P(SplitModeEquivalence, TreeBitIdenticalOnBootstrapMultiset) {
  stats::Rng data_rng(12);
  const auto data = smooth_data(250, 5, data_rng);
  // Bootstrap multiset: repeated indices, unsorted order.
  stats::Rng boot(5);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 400; ++i) {
    rows.push_back(boot.uniform_index(data.size()));
  }
  DecisionTreeRegressor legacy(tree_config(GetParam(), TreeKernel::kLegacy));
  DecisionTreeRegressor fast(tree_config(GetParam(), TreeKernel::kColumnar));
  stats::Rng rng_a(7), rng_b(7);
  legacy.fit(data, rows, rng_a);
  fast.fit(data, rows, rng_b);
  EXPECT_EQ(dump(legacy), dump(fast));
  // The RNG streams must also stay in lockstep (same draw sequence).
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

INSTANTIATE_TEST_SUITE_P(BothModes, SplitModeEquivalence,
                         ::testing::Values(SplitMode::kBest,
                                           SplitMode::kRandom));

TEST(ForestEquivalence, WideFeatureBestSplitFallbackBitIdentical) {
  // Feature count above the presort cap exercises the columnar
  // gather+sort fallback of the kBest path.
  stats::Rng data_rng(13);
  const auto data = smooth_data(80, 600, data_rng);
  TreeConfig legacy_cfg = tree_config(SplitMode::kBest, TreeKernel::kLegacy);
  legacy_cfg.max_features = 0;  // sqrt(600)
  TreeConfig fast_cfg = legacy_cfg;
  fast_cfg.kernel = TreeKernel::kColumnar;
  DecisionTreeRegressor legacy(legacy_cfg), fast(fast_cfg);
  stats::Rng rng_a(21), rng_b(21);
  legacy.fit(data, rng_a);
  fast.fit(data, rng_b);
  EXPECT_EQ(dump(legacy), dump(fast));
}

TEST(ForestEquivalence, IncrementalRefreshesStayBitIdentical) {
  // Several partial_fit rounds: the columnar path appends to the shared
  // ColumnStore across refreshes; the models must never diverge.
  IncrementalForestConfig legacy_cfg;
  legacy_cfg.forest.n_trees = 10;
  legacy_cfg.forest.tree = tree_config(SplitMode::kRandom, TreeKernel::kLegacy);
  IncrementalForestConfig fast_cfg = legacy_cfg;
  fast_cfg.forest.tree.kernel = TreeKernel::kColumnar;
  IncrementalForest legacy(legacy_cfg, 3), fast(fast_cfg, 3);

  stats::Rng data_rng(14);
  for (int round = 0; round < 5; ++round) {
    const auto batch = tie_heavy_data(60, 6, data_rng);
    legacy.partial_fit(batch);
    // Replays the same draws because tie_heavy_data consumed data_rng;
    // rebuild an identical batch from the stored buffer instead.
    const auto view = legacy.buffer();
    Dataset same(batch.feature_count());
    for (std::size_t i = view.size() - batch.size(); i < view.size(); ++i) {
      same.add(view.x(i), view.y(i));
    }
    fast.partial_fit(same);
    EXPECT_EQ(dump(legacy.forest()), dump(fast.forest())) << "round " << round;
  }
}

TEST(ForestEquivalence, PredictBatchMatchesSinglePredictions) {
  stats::Rng data_rng(15);
  const auto data = smooth_data(400, 8, data_rng);
  ForestConfig cfg;
  cfg.n_trees = 25;
  RandomForestRegressor forest(cfg);
  stats::Rng rng(9);
  forest.fit(data, rng);

  Matrix queries(0, data.feature_count());
  std::vector<double> q(data.feature_count());
  for (int i = 0; i < 64; ++i) {
    for (auto& v : q) v = data_rng.uniform(-2.5, 2.5);
    queries.push_row(q);
  }
  const auto batch = forest.predict_batch(queries);
  ASSERT_EQ(batch.size(), queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(batch[i], forest.predict(queries.row(i))) << "row " << i;
  }
}

TEST(ForestEquivalence, IncrementalPredictBatchMatchesSingles) {
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 15;
  IncrementalForest model(cfg, 4);
  stats::Rng data_rng(16);
  model.partial_fit(smooth_data(200, 5, data_rng));

  Matrix queries(0, 5);
  std::vector<double> q(5);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : q) v = data_rng.uniform(-2.0, 2.0);
    queries.push_row(q);
  }
  const auto batch = model.predict_batch(queries);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(batch[i], model.predict(queries.row(i))) << "row " << i;
  }
}

TEST(ForestEquivalence, PredictBatchOnUnfittedForestIsZero) {
  RandomForestRegressor forest;
  Matrix queries(0, 3);
  queries.push_row(std::vector<double>{1.0, 2.0, 3.0});
  const auto out = forest.predict_batch(queries);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0.0);
}

// --- Inference-kernel equivalence -----------------------------------------
// Every traversal backend (reference pointer-chase, scalar-blocked,
// AVX2, and both batched gather variants) must agree to the bit: the
// blocked kernels do no arithmetic the reference doesn't (compares and
// one mean reduction in the same tree order), so EXPECT_EQ, not NEAR.

// Per-row leaf walk through one backend, reduced exactly like predict().
double predict_via(const RandomForestRegressor& forest,
                   std::span<const double> x, bool simd) {
  std::vector<double> leaves(forest.blocked().tree_count());
  if (simd) {
    forest_kernel::leaves_simd(forest.blocked(), x, leaves);
  } else {
    forest_kernel::leaves_scalar(forest.blocked(), x, leaves);
  }
  return forest_kernel::reduce_mean(leaves);
}

TEST(ForestKernelEquivalence, ScalarBlockedMatchesReferenceOnTies) {
  stats::Rng data_rng(18);
  const auto data = tie_heavy_data(300, 6, data_rng);
  ForestConfig cfg;
  cfg.n_trees = 21;  // not a multiple of the lane width: exercises the tail
  RandomForestRegressor forest(cfg);
  stats::Rng rng(44);
  forest.fit(data, rng);

  std::vector<double> q(6);
  for (int i = 0; i < 200; ++i) {
    for (std::size_t f = 0; f < q.size(); ++f) {
      // Tie-heavy queries: values sitting exactly on quantised thresholds.
      q[f] = static_cast<double>(data_rng.uniform_index(5));
    }
    const double ref = forest.predict_reference(q);
    EXPECT_EQ(forest.predict(q), ref) << "dispatched, row " << i;
    EXPECT_EQ(predict_via(forest, q, /*simd=*/false), ref) << "scalar " << i;
    if (forest_kernel::simd_available()) {
      EXPECT_EQ(predict_via(forest, q, /*simd=*/true), ref) << "simd " << i;
    }
  }
}

TEST(ForestKernelEquivalence, GatherVariantsMatchReferenceBatch) {
  stats::Rng data_rng(19);
  const auto data = smooth_data(350, 7, data_rng);
  ForestConfig cfg;
  cfg.n_trees = 40;
  RandomForestRegressor forest(cfg);
  stats::Rng rng(45);
  forest.fit(data, rng);

  // 67 rows: several full 8-row blocks plus a ragged tail.
  Matrix queries(0, 7);
  std::vector<double> q(7);
  for (int i = 0; i < 67; ++i) {
    for (auto& v : q) v = data_rng.uniform(-2.5, 2.5);
    queries.push_row(q);
  }
  const auto ref = forest.predict_batch_reference(queries);
  std::vector<double> out(queries.rows());
  forest_kernel::gather_scalar(forest.blocked(), queries, out);
  EXPECT_EQ(out, ref);
  if (forest_kernel::simd_available()) {
    std::fill(out.begin(), out.end(), -1.0);
    forest_kernel::gather_simd(forest.blocked(), queries, out);
    EXPECT_EQ(out, ref);
  }
  EXPECT_EQ(forest.predict_batch(queries), ref);
}

TEST(ForestKernelEquivalence, BlockedLayoutInvariants) {
  stats::Rng data_rng(20);
  const auto data = tie_heavy_data(150, 5, data_rng);
  ForestConfig cfg;
  cfg.n_trees = 9;
  RandomForestRegressor forest(cfg);
  stats::Rng rng(46);
  forest.fit(data, rng);

  const BlockedForest& b = forest.blocked();
  ASSERT_EQ(b.tree_count(), 9u);
  ASSERT_EQ(b.depth.size(), 9u);
  ASSERT_EQ(b.value.size(), b.node_count());
  for (std::size_t g = 0; g < b.node_count(); ++g) {
    const auto& node = b.nodes[g];
    if (node.feature == BlockedForest::kLeaf) {
      // Leaves self-loop so parked lanes step harmlessly.
      EXPECT_EQ(node.left, static_cast<std::int32_t>(g));
    } else {
      // BFS lays siblings adjacently: right child is left + 1, and both
      // children live strictly after their parent.
      EXPECT_GT(node.left, static_cast<std::int32_t>(g));
      EXPECT_LT(node.left + 1, static_cast<std::int32_t>(b.node_count()));
    }
  }
}

TEST(ForestKernelEquivalence, EmptyAndUnfittedForests) {
  RandomForestRegressor forest;
  EXPECT_TRUE(forest.blocked().empty());
  Matrix queries(0, 4);
  std::vector<double> none;
  forest_kernel::gather_scalar(forest.blocked(), queries, none);
  EXPECT_TRUE(none.empty());
  queries.push_row(std::vector<double>{0.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(forest.predict_batch(queries), std::vector<double>{0.0});
}

TEST(ForestEquivalence, ParallelColumnarTrainingMatchesSerial) {
  // The shared ColumnStore is primed once and read concurrently; a
  // 4-thread fit must equal the single-thread fit bit for bit.
  stats::Rng data_rng(17);
  const auto data = tie_heavy_data(200, 6, data_rng);
  ForestConfig serial_cfg;
  serial_cfg.n_trees = 16;
  serial_cfg.threads = 1;
  ForestConfig parallel_cfg = serial_cfg;
  parallel_cfg.threads = 4;
  RandomForestRegressor serial(serial_cfg), parallel(parallel_cfg);
  stats::Rng rng_a(33), rng_b(33);
  serial.fit(data, rng_a);
  parallel.fit(data, rng_b);
  EXPECT_EQ(dump(serial), dump(parallel));
}

}  // namespace
}  // namespace gsight::ml
