// Golden equivalence between the legacy row-major training kernel and the
// columnar fast path (TreeKernel::kColumnar): same splits, same
// tie-breaking, same node arrays, same importances — bit-identical, not
// just statistically close. Serialised dumps are compared because
// save() prints doubles at max_digits10, which round-trips every distinct
// double to a distinct string. Also covers the batched-inference
// contract: predict_batch must equal N single predict() calls exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ml/incremental_forest.hpp"
#include "ml/random_forest.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

std::string dump(const DecisionTreeRegressor& tree) {
  std::ostringstream out;
  tree.save(out);
  return out.str();
}

std::string dump(const RandomForestRegressor& forest) {
  std::ostringstream out;
  forest.save(out);
  return out.str();
}

// Tie-heavy dataset: quantised features (many equal values per column), a
// constant column, and duplicated rows — the cases where split
// tie-breaking and accumulation order can silently diverge.
Dataset tie_heavy_data(std::size_t n, std::size_t dims, stats::Rng& rng) {
  Dataset d(dims);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < dims; ++f) {
      x[f] = f == 0 ? 1.0  // constant feature
                    : static_cast<double>(rng.uniform_index(5));
    }
    const double y = x[1] * 2.0 - x[2] + 0.25 * rng.normal();
    d.add(x, y);
    if (i % 7 == 0) d.add(x, y);  // exact duplicate rows
  }
  return d;
}

Dataset smooth_data(std::size_t n, std::size_t dims, stats::Rng& rng) {
  Dataset d(dims);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.uniform(-2.0, 2.0);
    d.add(x, x[0] * x[0] - 3.0 * x[1] + rng.normal());
  }
  return d;
}

TreeConfig tree_config(SplitMode mode, TreeKernel kernel) {
  TreeConfig cfg;
  cfg.split_mode = mode;
  cfg.kernel = kernel;
  cfg.max_features = 3;
  return cfg;
}

class SplitModeEquivalence : public ::testing::TestWithParam<SplitMode> {};

TEST_P(SplitModeEquivalence, ForestTreesBitIdenticalOnTies) {
  stats::Rng data_rng(11);
  const auto data = tie_heavy_data(300, 6, data_rng);
  ForestConfig legacy_cfg;
  legacy_cfg.n_trees = 12;
  legacy_cfg.tree = tree_config(GetParam(), TreeKernel::kLegacy);
  ForestConfig fast_cfg = legacy_cfg;
  fast_cfg.tree.kernel = TreeKernel::kColumnar;

  RandomForestRegressor legacy(legacy_cfg), fast(fast_cfg);
  stats::Rng rng_a(42), rng_b(42);
  legacy.fit(data, rng_a);
  fast.fit(data, rng_b);
  EXPECT_EQ(dump(legacy), dump(fast));

  // Importances feed Figure 8; they must match to the bit as well.
  const auto imp_a = legacy.importance();
  const auto imp_b = fast.importance();
  ASSERT_EQ(imp_a.size(), imp_b.size());
  for (std::size_t i = 0; i < imp_a.size(); ++i) {
    EXPECT_EQ(imp_a[i], imp_b[i]) << "importance[" << i << "]";
  }
}

TEST_P(SplitModeEquivalence, TreeBitIdenticalOnBootstrapMultiset) {
  stats::Rng data_rng(12);
  const auto data = smooth_data(250, 5, data_rng);
  // Bootstrap multiset: repeated indices, unsorted order.
  stats::Rng boot(5);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 400; ++i) {
    rows.push_back(boot.uniform_index(data.size()));
  }
  DecisionTreeRegressor legacy(tree_config(GetParam(), TreeKernel::kLegacy));
  DecisionTreeRegressor fast(tree_config(GetParam(), TreeKernel::kColumnar));
  stats::Rng rng_a(7), rng_b(7);
  legacy.fit(data, rows, rng_a);
  fast.fit(data, rows, rng_b);
  EXPECT_EQ(dump(legacy), dump(fast));
  // The RNG streams must also stay in lockstep (same draw sequence).
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

INSTANTIATE_TEST_SUITE_P(BothModes, SplitModeEquivalence,
                         ::testing::Values(SplitMode::kBest,
                                           SplitMode::kRandom));

TEST(ForestEquivalence, WideFeatureBestSplitFallbackBitIdentical) {
  // Feature count above the presort cap exercises the columnar
  // gather+sort fallback of the kBest path.
  stats::Rng data_rng(13);
  const auto data = smooth_data(80, 600, data_rng);
  TreeConfig legacy_cfg = tree_config(SplitMode::kBest, TreeKernel::kLegacy);
  legacy_cfg.max_features = 0;  // sqrt(600)
  TreeConfig fast_cfg = legacy_cfg;
  fast_cfg.kernel = TreeKernel::kColumnar;
  DecisionTreeRegressor legacy(legacy_cfg), fast(fast_cfg);
  stats::Rng rng_a(21), rng_b(21);
  legacy.fit(data, rng_a);
  fast.fit(data, rng_b);
  EXPECT_EQ(dump(legacy), dump(fast));
}

TEST(ForestEquivalence, IncrementalRefreshesStayBitIdentical) {
  // Several partial_fit rounds: the columnar path appends to the shared
  // ColumnStore across refreshes; the models must never diverge.
  IncrementalForestConfig legacy_cfg;
  legacy_cfg.forest.n_trees = 10;
  legacy_cfg.forest.tree = tree_config(SplitMode::kRandom, TreeKernel::kLegacy);
  IncrementalForestConfig fast_cfg = legacy_cfg;
  fast_cfg.forest.tree.kernel = TreeKernel::kColumnar;
  IncrementalForest legacy(legacy_cfg, 3), fast(fast_cfg, 3);

  stats::Rng data_rng(14);
  for (int round = 0; round < 5; ++round) {
    const auto batch = tie_heavy_data(60, 6, data_rng);
    legacy.partial_fit(batch);
    // Replays the same draws because tie_heavy_data consumed data_rng;
    // rebuild an identical batch from the stored buffer instead.
    const auto view = legacy.buffer();
    Dataset same(batch.feature_count());
    for (std::size_t i = view.size() - batch.size(); i < view.size(); ++i) {
      same.add(view.x(i), view.y(i));
    }
    fast.partial_fit(same);
    EXPECT_EQ(dump(legacy.forest()), dump(fast.forest())) << "round " << round;
  }
}

TEST(ForestEquivalence, PredictBatchMatchesSinglePredictions) {
  stats::Rng data_rng(15);
  const auto data = smooth_data(400, 8, data_rng);
  ForestConfig cfg;
  cfg.n_trees = 25;
  RandomForestRegressor forest(cfg);
  stats::Rng rng(9);
  forest.fit(data, rng);

  Matrix queries(0, data.feature_count());
  std::vector<double> q(data.feature_count());
  for (int i = 0; i < 64; ++i) {
    for (auto& v : q) v = data_rng.uniform(-2.5, 2.5);
    queries.push_row(q);
  }
  const auto batch = forest.predict_batch(queries);
  ASSERT_EQ(batch.size(), queries.rows());
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(batch[i], forest.predict(queries.row(i))) << "row " << i;
  }
}

TEST(ForestEquivalence, IncrementalPredictBatchMatchesSingles) {
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 15;
  IncrementalForest model(cfg, 4);
  stats::Rng data_rng(16);
  model.partial_fit(smooth_data(200, 5, data_rng));

  Matrix queries(0, 5);
  std::vector<double> q(5);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : q) v = data_rng.uniform(-2.0, 2.0);
    queries.push_row(q);
  }
  const auto batch = model.predict_batch(queries);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    EXPECT_EQ(batch[i], model.predict(queries.row(i))) << "row " << i;
  }
}

TEST(ForestEquivalence, PredictBatchOnUnfittedForestIsZero) {
  RandomForestRegressor forest;
  Matrix queries(0, 3);
  queries.push_row(std::vector<double>{1.0, 2.0, 3.0});
  const auto out = forest.predict_batch(queries);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0.0);
}

TEST(ForestEquivalence, ParallelColumnarTrainingMatchesSerial) {
  // The shared ColumnStore is primed once and read concurrently; a
  // 4-thread fit must equal the single-thread fit bit for bit.
  stats::Rng data_rng(17);
  const auto data = tie_heavy_data(200, 6, data_rng);
  ForestConfig serial_cfg;
  serial_cfg.n_trees = 16;
  serial_cfg.threads = 1;
  ForestConfig parallel_cfg = serial_cfg;
  parallel_cfg.threads = 4;
  RandomForestRegressor serial(serial_cfg), parallel(parallel_cfg);
  stats::Rng rng_a(33), rng_b(33);
  serial.fit(data, rng_a);
  parallel.fit(data, rng_b);
  EXPECT_EQ(dump(serial), dump(parallel));
}

}  // namespace
}  // namespace gsight::ml
