#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

TEST(StandardScaler, TransformsToZeroMeanUnitVariance) {
  stats::Rng rng(3);
  Dataset d(2);
  for (int i = 0; i < 2000; ++i) {
    d.add(std::vector<double>{rng.normal(10.0, 3.0), rng.normal(-5.0, 0.5)},
          0.0);
  }
  StandardScaler s;
  s.partial_fit(d);
  double m0 = 0.0, m1 = 0.0, v0 = 0.0, v1 = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto t = s.transform(d.x(i));
    m0 += t[0];
    m1 += t[1];
    v0 += t[0] * t[0];
    v1 += t[1] * t[1];
  }
  const double n = static_cast<double>(d.size());
  EXPECT_NEAR(m0 / n, 0.0, 1e-9);
  EXPECT_NEAR(m1 / n, 0.0, 1e-9);
  EXPECT_NEAR(v0 / n, 1.0, 0.01);
  EXPECT_NEAR(v1 / n, 1.0, 0.01);
}

TEST(StandardScaler, IncrementalMatchesBatch) {
  stats::Rng rng(5);
  Dataset a(1), b(1);
  for (int i = 0; i < 500; ++i) {
    a.add(std::vector<double>{rng.normal(2.0, 1.0)}, 0.0);
    b.add(std::vector<double>{rng.normal(2.0, 1.0)}, 0.0);
  }
  StandardScaler incremental, batch;
  incremental.partial_fit(a);
  incremental.partial_fit(b);
  Dataset both(1);
  both.append(a);
  both.append(b);
  batch.partial_fit(both);
  EXPECT_NEAR(incremental.mean()[0], batch.mean()[0], 1e-9);
  EXPECT_NEAR(incremental.stddev()[0], batch.stddev()[0], 1e-9);
}

TEST(StandardScaler, ConstantFeatureDoesNotExplode) {
  StandardScaler s;
  for (int i = 0; i < 10; ++i) {
    s.partial_fit(std::vector<double>{5.0});
  }
  const auto t = s.transform(std::vector<double>{5.0});
  EXPECT_TRUE(std::isfinite(t[0]));
  EXPECT_NEAR(t[0], 0.0, 1e-6);
}

TEST(Metrics, MapeBasic) {
  const std::vector<double> truth{100.0, 200.0};
  const std::vector<double> pred{110.0, 180.0};
  EXPECT_NEAR(mape(truth, pred), 10.0, 1e-12);  // (10% + 10%) / 2
}

TEST(Metrics, MapeSkipsNearZeroTruth) {
  const std::vector<double> truth{0.0, 100.0};
  const std::vector<double> pred{50.0, 150.0};
  EXPECT_NEAR(mape(truth, pred), 50.0, 1e-12);
}

TEST(Metrics, ApePerSample) {
  const auto errs = ape({10.0, 20.0}, {11.0, 16.0});
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_NEAR(errs[0], 10.0, 1e-12);
  EXPECT_NEAR(errs[1], 20.0, 1e-12);
}

TEST(Metrics, MaeRmse) {
  const std::vector<double> truth{0.0, 0.0, 0.0, 0.0};
  const std::vector<double> pred{1.0, -1.0, 3.0, -3.0};
  EXPECT_DOUBLE_EQ(mae(truth, pred), 2.0);
  EXPECT_NEAR(rmse(truth, pred), std::sqrt(5.0), 1e-12);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2(truth, truth), 1.0);
  const std::vector<double> mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r2(truth, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mape({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(mae({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
}

}  // namespace
}  // namespace gsight::ml
