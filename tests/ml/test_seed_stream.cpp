// stats::SeedStream — the repo-wide seed-derivation contract (DESIGN.md
// §9): pure, bit-stable across platforms and releases, and collision-free
// enough that derived per-task seeds never alias in practice.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "stats/seed_stream.hpp"

namespace gsight::stats {
namespace {

TEST(SeedStream, GoldenValuesAreBitStable) {
  // Pinned outputs of the SplitMix64-based finalizer. If these change, any
  // persisted experiment seeded through SeedStream silently reruns with
  // different randomness — treat a failure here as an ABI break.
  EXPECT_EQ(SeedStream::derive(0, 0), 0xA706DD2F4D197E6FULL);
  EXPECT_EQ(SeedStream::derive(0, 1), 0xF161346224370DF2ULL);
  EXPECT_EQ(SeedStream::derive(1234, 0), 0x9E17E35F6D9238EDULL);
  EXPECT_EQ(SeedStream::derive(1234, 7), 0xD49B441CC79DB39EULL);
  EXPECT_EQ(SeedStream::derive(0xDEADBEEFULL, 42), 0x208C1F84487661C1ULL);
}

TEST(SeedStream, InstanceMatchesStatic) {
  const SeedStream stream(97);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(stream.derive(i), SeedStream::derive(97, i));
  }
}

TEST(SeedStream, DeriveIsPure) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(SeedStream::derive(5, i), SeedStream::derive(5, i));
  }
}

TEST(SeedStreamCampaign, NoCollisionsAcross1e5Derivations) {
  // A campaign of 1e5 tasks must get 1e5 distinct seeds; also check the
  // derived stream never reproduces the root itself.
  constexpr std::uint64_t kRoot = 2024;
  constexpr std::uint64_t kN = 100000;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const std::uint64_t s = SeedStream::derive(kRoot, i);
    EXPECT_NE(s, kRoot);
    EXPECT_TRUE(seen.insert(s).second) << "collision at index " << i;
  }
  EXPECT_EQ(seen.size(), kN);
}

TEST(SeedStream, AdjacentRootsProduceDisjointStreams) {
  // seed+1-style root choices must still give unrelated streams — the
  // whole point of the finalizer over the old `seed + i` arithmetic.
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t root = 100; root < 104; ++root) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE(seen.insert(SeedStream::derive(root, i)).second)
          << "root " << root << " index " << i;
    }
  }
}

TEST(SeedStream, IndexStridePatternsDoNotCollide) {
  // Common sub-stream layouts: named tags (small constants) next to dense
  // array indices, as used by sim::Instance and sched::Experiment.
  std::unordered_set<std::uint64_t> seen;
  const SeedStream stream(31337);
  for (std::uint64_t tag = 0; tag < 32; ++tag) {
    EXPECT_TRUE(seen.insert(stream.derive(tag)).second);
  }
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_TRUE(seen.insert(stream.derive(1000 + i)).second);
  }
}

}  // namespace
}  // namespace gsight::stats
