#include "ml/forest_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ml/metrics.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

Dataset make_data(std::size_t n, stats::Rng& rng) {
  Dataset d(4);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    d.add(std::vector<double>{a, b, rng.uniform(), rng.uniform()},
          2.0 * a - b + 0.3 * a * b);
  }
  return d;
}

TEST(ForestIo, DatasetRoundTrip) {
  stats::Rng rng(1);
  const auto original = make_data(50, rng);
  std::stringstream buffer;
  write_dataset(buffer, original);
  const auto loaded = read_dataset(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.feature_count(), original.feature_count());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.y(i), original.y(i));
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(loaded.x(i)[j], original.x(i)[j]);
    }
  }
}

TEST(ForestIo, TreeRoundTripPredictsIdentically) {
  stats::Rng rng(2);
  const auto data = make_data(400, rng);
  TreeConfig cfg;
  cfg.max_features = 4;
  DecisionTreeRegressor tree(cfg);
  tree.fit(data, rng);
  std::stringstream buffer;
  tree.save(buffer);
  DecisionTreeRegressor loaded;
  loaded.load(buffer);
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (std::size_t i = 0; i < 50; ++i) {
    const auto x = data.x(i);
    EXPECT_DOUBLE_EQ(loaded.predict(x), tree.predict(x)) << i;
  }
  EXPECT_EQ(loaded.importance(), tree.importance());
}

TEST(ForestIo, ForestRoundTripPredictsIdentically) {
  stats::Rng rng(3);
  const auto data = make_data(500, rng);
  ForestConfig cfg;
  cfg.n_trees = 20;
  RandomForestRegressor forest(cfg);
  forest.fit(data, rng);
  std::stringstream buffer;
  write_forest(buffer, forest);
  const auto loaded = read_forest(buffer);
  EXPECT_EQ(loaded.tree_count(), forest.tree_count());
  for (std::size_t i = 0; i < 50; ++i) {
    const auto x = data.x(i);
    EXPECT_DOUBLE_EQ(loaded.predict(x), forest.predict(x)) << i;
  }
  EXPECT_EQ(loaded.importance(), forest.importance());
}

TEST(ForestIo, IncrementalForestSurvivesRestart) {
  stats::Rng rng(4);
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 20;
  cfg.refresh_fraction = 0.5;
  IncrementalForest model(cfg, 7);
  model.partial_fit(make_data(300, rng));

  const std::string path = "/tmp/gsight_irfr_test.txt";
  save_incremental_forest(model, path);
  auto loaded = load_incremental_forest(path);
  std::remove(path.c_str());

  // Identical predictions after reload...
  const auto probe = make_data(30, rng);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.predict(probe.x(i)), model.predict(probe.x(i)));
  }
  EXPECT_EQ(loaded.samples_seen(), model.samples_seen());
  // ...and the restored model keeps LEARNING (buffer intact): after more
  // batches its error on fresh data is reasonable.
  loaded.partial_fit(make_data(300, rng));
  EXPECT_EQ(loaded.samples_seen(), 600u);
  const auto test = make_data(200, rng);
  EXPECT_GT(r2(test.targets(), [&] {
              std::vector<double> p;
              for (std::size_t i = 0; i < test.size(); ++i) {
                p.push_back(loaded.predict(test.x(i)));
              }
              return p;
            }()),
            0.8);
}

TEST(ForestIo, VersionStampCountsUpdateRoundsAndRoundTrips) {
  stats::Rng rng(8);
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 10;
  IncrementalForest model(cfg, 11);
  EXPECT_EQ(model.version(), 0u);  // cold model: nothing published yet
  model.partial_fit(make_data(100, rng));
  EXPECT_EQ(model.version(), 1u);
  model.partial_fit(make_data(60, rng));
  model.partial_fit(make_data(60, rng));
  EXPECT_EQ(model.version(), 3u);
  // Empty batches are no-ops and must not mint a new version.
  model.partial_fit(Dataset(4));
  EXPECT_EQ(model.version(), 3u);

  std::stringstream buffer;
  save_incremental_forest(model, buffer);
  const auto loaded = load_incremental_forest(buffer);
  EXPECT_EQ(loaded.version(), 3u);
}

// The mid-stream contract: saving after k update rounds and resuming from
// the file is indistinguishable from never having stopped. This is what
// makes the serving layer's persisted models trustworthy — an operator
// can snapshot, restart, and keep folding observations with bit-identical
// results. Requires the updater RNG stream to survive the round trip.
TEST(ForestIo, MidStreamReloadContinuesBitIdentically) {
  stats::Rng data_rng(9);
  std::vector<Dataset> batches;
  for (int i = 0; i < 6; ++i) batches.push_back(make_data(80, data_rng));

  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 12;
  cfg.refresh_fraction = 0.5;  // make refreshes (and thus RNG draws) matter
  IncrementalForest uninterrupted(cfg, 13);
  IncrementalForest checkpointed(cfg, 13);
  for (int i = 0; i < 3; ++i) {
    uninterrupted.partial_fit(batches[i]);
    checkpointed.partial_fit(batches[i]);
  }
  // Checkpoint after k = 3 rounds, reload, continue on the copy.
  std::stringstream buffer;
  save_incremental_forest(checkpointed, buffer);
  auto resumed = load_incremental_forest(buffer);
  EXPECT_EQ(resumed.version(), 3u);
  for (int i = 3; i < 6; ++i) {
    uninterrupted.partial_fit(batches[i]);
    resumed.partial_fit(batches[i]);
  }
  EXPECT_EQ(resumed.version(), uninterrupted.version());
  EXPECT_EQ(resumed.samples_seen(), uninterrupted.samples_seen());
  const auto probe = make_data(50, data_rng);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    // Exact equality: the resumed model must be bit-identical, not close.
    EXPECT_EQ(resumed.predict(probe.x(i)), uninterrupted.predict(probe.x(i)))
        << "diverged at probe " << i;
  }
}

TEST(ForestIo, RejectsCorruptRngState) {
  stats::Rng rng(10);
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 4;
  IncrementalForest model(cfg, 17);
  model.partial_fit(make_data(60, rng));
  std::stringstream buffer;
  save_incremental_forest(model, buffer);
  // Zero out the serialized xoshiro words: a degenerate (stuck) stream
  // that can only come from corruption must be rejected on load.
  std::string text = buffer.str();
  const auto rng_pos = text.find("\nrng ");
  ASSERT_NE(rng_pos, std::string::npos);
  const auto line_end = text.find('\n', rng_pos + 1);
  text.replace(rng_pos, line_end - rng_pos, "\nrng 0 0 0 0 0 0");
  std::stringstream corrupt(text);
  EXPECT_THROW(load_incremental_forest(corrupt), std::runtime_error);
}

TEST(ForestIo, RejectsCorruptInput) {
  std::stringstream garbage("this is not a forest");
  RandomForestRegressor forest;
  EXPECT_THROW(forest.load(garbage), std::runtime_error);
  std::stringstream garbage2("dataset nope");
  EXPECT_THROW(read_dataset(garbage2), std::runtime_error);
  EXPECT_THROW(load_incremental_forest("/tmp/missing_gsight_model.txt"),
               std::runtime_error);
}

// Header layout (RandomForestRegressor::save):
//   forest <tree_count> <feature_count> <n_trees> <bootstrap_fraction>
//          <max_depth> <min_samples_split> <min_samples_leaf>
//          <max_features> <split_mode>
TEST(ForestIo, RejectsHostileHeaders) {
  const auto expect_rejects = [](const std::string& header) {
    std::stringstream in(header);
    RandomForestRegressor forest;
    EXPECT_THROW(forest.load(in), std::runtime_error) << header;
  };
  // Implausible tree count must fail before any multi-GB allocation.
  expect_rejects("forest 99999999999 4 20 0.8 10 2 1 4 0\n");
  expect_rejects("forest 20 4 99999999999 0.8 10 2 1 4 0\n");
  // Implausible feature count.
  expect_rejects("forest 20 99999999999 20 0.8 10 2 1 4 0\n");
  // split_mode outside the enum range would be UB after static_cast.
  expect_rejects("forest 2 4 2 0.8 10 2 1 4 7\n");
  expect_rejects("forest 2 4 2 0.8 10 2 1 4 -1\n");
  // bootstrap_fraction must be finite and in (0, 1].
  expect_rejects("forest 2 4 2 nan 10 2 1 4 0\n");
  expect_rejects("forest 2 4 2 inf 10 2 1 4 0\n");
  expect_rejects("forest 2 4 2 1.5 10 2 1 4 0\n");
  expect_rejects("forest 2 4 2 0.0 10 2 1 4 0\n");
  expect_rejects("forest 2 4 2 -0.5 10 2 1 4 0\n");
  // Degenerate tree configs.
  expect_rejects("forest 2 4 2 0.8 0 2 1 4 0\n");   // max_depth == 0
  expect_rejects("forest 2 4 2 0.8 10 1 1 4 0\n");  // min_samples_split < 2
  expect_rejects("forest 2 4 2 0.8 10 2 0 4 0\n");  // min_samples_leaf == 0
  // Truncated header.
  expect_rejects("forest 2 4\n");
  expect_rejects("");
}

TEST(ForestIo, FailedLoadLeavesForestUsable) {
  stats::Rng rng(5);
  const auto data = make_data(200, rng);
  ForestConfig cfg;
  cfg.n_trees = 5;
  RandomForestRegressor forest(cfg);
  forest.fit(data, rng);
  const double before = forest.predict(data.x(0));

  std::stringstream corrupt("forest 2 4 2 0.8 10 2 1 4 7\n");
  EXPECT_THROW(forest.load(corrupt), std::runtime_error);
  // Validation happens before any state is committed, so the forest
  // still answers with its pre-load model.
  EXPECT_EQ(forest.tree_count(), 5u);
  EXPECT_DOUBLE_EQ(forest.predict(data.x(0)), before);
}

TEST(ForestIo, LoadPreservesRuntimeThreadKnob) {
  stats::Rng rng(6);
  const auto data = make_data(150, rng);
  ForestConfig save_cfg;
  save_cfg.n_trees = 4;
  RandomForestRegressor source(save_cfg);
  source.fit(data, rng);
  std::stringstream buffer;
  source.save(buffer);

  ForestConfig load_cfg;
  load_cfg.threads = 3;  // runtime knob: must survive load
  RandomForestRegressor loaded(load_cfg);
  loaded.load(buffer);
  EXPECT_EQ(loaded.config().threads, 3u);
  EXPECT_EQ(loaded.tree_count(), 4u);
}

}  // namespace
}  // namespace gsight::ml
