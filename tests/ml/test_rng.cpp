#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace gsight::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 60u);  // state must not be stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng r(17);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = r.lognormal_median(3.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 3.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r(23);
  for (const double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(r.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05)) << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, ChanceProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng r(37);
  const auto p = r.permutation(100);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(41);
  const auto s = r.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (std::size_t v : s) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng r(43);
  const auto s = r.sample_without_replacement(10, 10);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Property sweep: moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMomentsStable) {
  Rng r(GetParam());
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_NEAR(sq / n, 1.0 / 3.0, 0.02);
}

TEST_P(RngSeedSweep, PermutationUnbiasedFirstElement) {
  Rng r(GetParam());
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(r.permutation(10)[0]);
  }
  EXPECT_NEAR(sum / n, 4.5, 0.35);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 99, 12345, 0xDEADBEEF));

}  // namespace
}  // namespace gsight::stats
