#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace gsight::stats {
namespace {

TEST(Pearson, PerfectPositiveAndNegative) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  for (auto& v : y) v = -v;
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(Pearson, TooFewPointsIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, KnownHandComputedValue) {
  // x = {1,2,3}, y = {1,2,4}: r = 0.981...
  const double r = pearson({1, 2, 3}, {1, 2, 4});
  EXPECT_NEAR(r, 0.9819805, 1e-6);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(5);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Ranks, SimpleAndTied) {
  const auto r1 = ranks({10.0, 30.0, 20.0});
  EXPECT_EQ(r1, (std::vector<double>{1.0, 3.0, 2.0}));
  const auto r2 = ranks({5.0, 1.0, 5.0, 2.0});
  // 1 -> rank 1, 2 -> rank 2, the two 5s share (3+4)/2 = 3.5.
  EXPECT_EQ(r2, (std::vector<double>{3.5, 1.0, 3.5, 2.0}));
}

TEST(Ranks, AllTied) {
  const auto r = ranks({7.0, 7.0, 7.0});
  EXPECT_EQ(r, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  std::vector<double> x(50), y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = std::exp(0.1 * static_cast<double>(i));  // monotone, nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  // Pearson must be noticeably below 1 for this convex curve.
  EXPECT_LT(pearson(x, y), 0.95);
}

TEST(Spearman, InvariantUnderMonotoneTransform) {
  Rng rng(11);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    x[i] = rng.normal();
    y[i] = x[i] + rng.normal() * 0.5;
  }
  const double base = spearman(x, y);
  std::vector<double> y_cubed = y;
  for (auto& v : y_cubed) v = v * v * v;  // strictly monotone
  EXPECT_NEAR(spearman(x, y_cubed), base, 1e-12);
}

TEST(Spearman, HandlesTiesGracefully) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{1, 1, 2, 2, 3, 3};
  const double r = spearman(x, y);
  EXPECT_GT(r, 0.9);
  EXPECT_LE(r, 1.0);
}

}  // namespace
}  // namespace gsight::stats
