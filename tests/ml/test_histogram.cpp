#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace gsight::stats {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.5);
  h.add(9.0);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(h.cdf(0.5), 0.5, 0.05);
}

TEST(Histogram, EmptyCdfZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cdf(0.7), 0.0);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// Regression: NaN used to flow into the bin-index computation, where
// casting the non-finite intermediate to an integer is UB. Non-finite
// samples are now routed to a dedicated count instead of being binned.
TEST(Histogram, NonFiniteSamplesAreRoutedAside) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(5.0);
  EXPECT_EQ(h.nonfinite_count(), 3u);
  EXPECT_EQ(h.count(), 1u);  // only the finite sample is binned
  std::size_t binned = 0;
  for (std::size_t b = 0; b < 5; ++b) binned += h.bin_count(b);
  EXPECT_EQ(binned, 1u);
}

TEST(Histogram, HugeFiniteValuesClampWithoutOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::max());     // would overflow a naive
  h.add(-std::numeric_limits<double>::max());    // integer bin index
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.nonfinite_count(), 0u);
}

TEST(EmpiricalCdf, SortedAndEndsAtOne) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().first, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(EmpiricalCdf, ThinsToMaxPoints) {
  std::vector<double> v(10000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const auto cdf = empirical_cdf(v, 32);
  EXPECT_LE(cdf.size(), 34u);
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

// Regression: when the maximum value appeared more than once, thinning
// could keep a point exactly at the max with CDF < 1 and the
// exact-equality tail append skipped the final (max, 1.0) point — the
// CDF never reached 1.0.
TEST(EmpiricalCdf, DuplicatedMaximumStillReachesOne) {
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < 600; ++i) v[i] = static_cast<double>(i);
  for (std::size_t i = 600; i < v.size(); ++i) v[i] = 599.0;  // heavy tail tie
  const auto cdf = empirical_cdf(v, 16);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().first, 599.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  // No duplicate abscissa with conflicting CDF values at the tail.
  if (cdf.size() >= 2 && cdf[cdf.size() - 2].first == cdf.back().first) {
    EXPECT_LE(cdf[cdf.size() - 2].second, cdf.back().second);
  }
}

TEST(EmpiricalCdf, MaxPointsZeroIsSafe) {
  std::vector<double> v{3.0, 1.0, 2.0};
  const auto cdf = empirical_cdf(v, 0);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().first, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(EmpiricalCdf, AllValuesEqual) {
  const auto cdf = empirical_cdf({7.0, 7.0, 7.0, 7.0}, 8);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().first, 7.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(DistributionSummary, MentionsKeyStats) {
  const auto s = distribution_summary({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_NE(s.find("median=3"), std::string::npos);
  EXPECT_NE(s.find("n=5"), std::string::npos);
  EXPECT_EQ(distribution_summary({}), "(empty)");
}

}  // namespace
}  // namespace gsight::stats
