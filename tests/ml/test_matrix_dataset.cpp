#include <gtest/gtest.h>

#include "ml/dataset.hpp"
#include "ml/matrix.hpp"

namespace gsight::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m.row(0)[1], 7.0);
}

TEST(Matrix, PushRowDefinesColumns) {
  Matrix m;
  const double r0[] = {1.0, 2.0};
  m.push_row(r0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  const double r1[] = {3.0, 4.0};
  m.push_row(r1);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, MatvecKnown) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
  for (std::size_t c = 0; c < 3; ++c) {
    m(0, c) = static_cast<double>(c + 1);
    m(1, c) = static_cast<double>(c + 4);
  }
  const std::vector<double> x{1.0, 1.0, 1.0};
  const auto y = m.matvec(x);
  EXPECT_EQ(y, (std::vector<double>{6.0, 15.0}));
}

TEST(Matrix, MatvecTransposedKnown) {
  Matrix m(2, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    m(0, c) = static_cast<double>(c + 1);
    m(1, c) = static_cast<double>(c + 4);
  }
  const std::vector<double> x{1.0, 2.0};
  // M^T x = [1+8, 2+10, 3+12] = [9, 12, 15]
  EXPECT_EQ(m.matvec_transposed(x), (std::vector<double>{9.0, 12.0, 15.0}));
}

TEST(Matrix, DotAndDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 27.0);
}

TEST(Dataset, AddAndAccess) {
  Dataset d(2);
  d.add(std::vector<double>{1.0, 2.0}, 10.0);
  d.add(std::vector<double>{3.0, 4.0}, 20.0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(d.x(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(d.y(0), 10.0);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a(1), b(1);
  a.add(std::vector<double>{1.0}, 1.0);
  b.add(std::vector<double>{2.0}, 2.0);
  b.add(std::vector<double>{3.0}, 3.0);
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.y(2), 3.0);
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset d(1);
  for (int i = 0; i < 5; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, i * 10.0);
  }
  const std::vector<std::size_t> idx{4, 0, 4};
  const auto s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.y(0), 40.0);
  EXPECT_DOUBLE_EQ(s.y(1), 0.0);
  EXPECT_DOUBLE_EQ(s.y(2), 40.0);  // repetition allowed (bootstrap)
}

TEST(Dataset, HeadTruncates) {
  Dataset d(1);
  for (int i = 0; i < 5; ++i) {
    d.add(std::vector<double>{0.0}, static_cast<double>(i));
  }
  EXPECT_EQ(d.head(3).size(), 3u);
  EXPECT_EQ(d.head(99).size(), 5u);
}

TEST(Dataset, SplitPartitions) {
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, static_cast<double>(i));
  }
  stats::Rng rng(3);
  const auto [train, test] = d.split(0.8, rng);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  // Every label appears exactly once across the two parts.
  std::vector<int> seen(100, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    ++seen[static_cast<int>(train.y(i))];
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    ++seen[static_cast<int>(test.y(i))];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Dataset, ShufflePreservesPairs) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, i * 2.0);
  }
  stats::Rng rng(7);
  d.shuffle(rng);
  EXPECT_EQ(d.size(), 50u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(d.y(i), d.x(i)[0] * 2.0);  // pairing intact
  }
}

}  // namespace
}  // namespace gsight::ml
