#include "ml/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gsight::ml {
namespace {

TEST(ThreadPool, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> out(5000, 0.0);
  pool.parallel_for(5000, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * 4999.0 * 5000.0 / 2.0);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SequentialCallsCompose) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(25, [&](std::size_t) { ++count; });
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
}

}  // namespace
}  // namespace gsight::ml
