#include "ml/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace gsight::ml {
namespace {

TEST(ThreadPool, RunsAllIterationsExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> out(5000, 0.0);
  pool.parallel_for(5000, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * 4999.0 * 5000.0 / 2.0);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SequentialCallsCompose) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(25, [&](std::size_t) { ++count; });
  }
  EXPECT_EQ(count.load(), 500);
}

// Regression: completion used to be tracked pool-globally, so a
// parallel_for issued from inside a worker task deadlocked (the caller
// waited for tasks only it could have drained). Per-batch tracking with
// a participating caller makes nesting terminate.
TEST(ThreadPool, NestedParallelForTerminates) {
  ThreadPool pool(4);
  std::vector<std::array<std::atomic<int>, 8>> hits(8);
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(8, [&](std::size_t inner) { ++hits[outer][inner]; });
  });
  for (const auto& row : hits) {
    for (const auto& h : row) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, DeeplyNestedParallelForTerminates) {
  ThreadPool pool(2);  // fewer workers than nesting width
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { ++count; });
    });
  });
  EXPECT_EQ(count.load(), 64);
}

// Regression: the pool-global completion count also made concurrent
// callers from *different* threads wait on each other's work — and a
// caller could return while its own iterations were still running.
// Each batch now waits on exactly its own completions.
TEST(ThreadPool, ConcurrentCallersSeeOwnBatchComplete) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kIters = 200;
  std::vector<std::thread> callers;
  std::vector<std::atomic<int>> counts(kCallers);
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 5; ++round) {
        counts[c] = 0;
        pool.parallel_for(kIters, [&](std::size_t) { ++counts[c]; });
        // parallel_for returning means THIS batch fully completed.
        if (counts[c].load() != kIters) ++failures;
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPool, NestedExceptionPropagatesToInnerCaller) {
  ThreadPool pool(4);
  std::atomic<int> outer_caught{0};
  pool.parallel_for(4, [&](std::size_t) {
    try {
      pool.parallel_for(8, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
      ++outer_caught;
    }
  });
  EXPECT_EQ(outer_caught.load(), 4);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
}

TEST(ThreadPoolSubmit, ReturnsTaskValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolSubmit, VoidTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto f = pool.submit([&ran] { ran.store(true); });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolSubmit, MoveOnlyResultType) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return std::make_unique<int>(7); });
  auto p = f.get();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

TEST(ThreadPoolSubmit, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  try {
    f.get();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPoolSubmit, ExceptionDoesNotPoisonPool) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("x"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] { return std::string("still alive"); });
  EXPECT_EQ(good.get(), "still alive");
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolSubmit, ManyConcurrentSubmitsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(200);
  for (std::size_t i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

// The destructor drains already-submitted tasks before joining: a
// fire-and-forget submit (the serve-layer background trainer's pattern)
// is never silently dropped by pool teardown.
TEST(ThreadPoolSubmit, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace gsight::ml
