#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/contracts.hpp"
#include "stats/rng.hpp"

namespace gsight::stats {
namespace {

TEST(Running, EmptyIsZero) {
  Running r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.variance(), 0.0);
  EXPECT_EQ(r.cov(), 0.0);
}

TEST(Running, KnownValues) {
  Running r;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(v);
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
  EXPECT_NEAR(r.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(r.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.max(), 9.0);
  EXPECT_DOUBLE_EQ(r.sum(), 40.0);
}

TEST(Running, SingleValueVarianceZero) {
  Running r;
  r.add(3.0);
  EXPECT_EQ(r.variance(), 0.0);
  EXPECT_EQ(r.stddev(), 0.0);
}

TEST(Running, MergeMatchesSequential) {
  Rng rng(5);
  Running all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Running, MergeWithEmpty) {
  Running a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Running, CovMatchesDefinition) {
  Running r;
  for (double v : {1.0, 2.0, 3.0}) r.add(v);
  EXPECT_NEAR(r.cov(), r.stddev() / 2.0, 1e-12);
}

TEST(Percentile, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Percentile, EndpointsAndInterpolation) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 15.0);  // linear interpolation
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, ExactEndpointsReturnMinMax) {
  // p=0 and p=100 must hit the extremes exactly — rank arithmetic lands on
  // index 0 and size()-1 with frac 0, no interpolation drift.
  std::vector<double> v{9.0, -3.0, 4.0, 7.0, 0.5, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), -3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, OutOfRangePViolatesContract) {
  // Regression: this guard used to be a plain assert(), so release builds
  // read past the end of the vector instead of reporting the bad p.
  core::ScopedContractHandler guard;
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_THROW(percentile(v, -0.001), core::ContractViolation);
  EXPECT_THROW(percentile(v, 100.001), core::ContractViolation);
  EXPECT_THROW(percentile(v, 150.0), core::ContractViolation);
  EXPECT_THROW(percentile(v, std::numeric_limits<double>::quiet_NaN()),
               core::ContractViolation);
}

TEST(Reservoir, ZeroCapacityViolatesContract) {
  core::ScopedContractHandler guard;
  EXPECT_THROW(Reservoir(0), core::ContractViolation);
}

TEST(Percentile, AgreesWithFullSort) {
  Rng rng(9);
  std::vector<double> v(1001);
  for (auto& x : v) x = rng.uniform(0.0, 100.0);
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0}) {
    const double rank = p / 100.0 * 1000.0;
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    const double expected =
        sorted[lo] + frac * (sorted[std::min<std::size_t>(lo + 1, 1000)] -
                             sorted[lo]);
    EXPECT_NEAR(percentile(v, p), expected, 1e-9) << p;
  }
}

TEST(SummaryHelpers, MeanVarStd) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(cov(v), std::sqrt(5.0 / 3.0) / 2.5, 1e-12);
}

TEST(Reservoir, KeepsEverythingBelowCapacity) {
  Reservoir res(100);
  for (int i = 0; i < 50; ++i) res.add(i);
  EXPECT_EQ(res.size(), 50u);
  EXPECT_EQ(res.seen(), 50u);
}

TEST(Reservoir, CapsMemory) {
  Reservoir res(64);
  for (int i = 0; i < 10000; ++i) res.add(i);
  EXPECT_EQ(res.size(), 64u);
  EXPECT_EQ(res.seen(), 10000u);
}

TEST(Reservoir, SampleIsApproximatelyUniform) {
  // Feed uniform(0,1); the reservoir's mean over many reservoirs should be
  // ~0.5 and its percentiles close to the stream's.
  Rng rng(77);
  Reservoir res(512, 123);
  for (int i = 0; i < 100000; ++i) res.add(rng.uniform());
  EXPECT_NEAR(res.mean(), 0.5, 0.05);
  EXPECT_NEAR(res.percentile(50.0), 0.5, 0.07);
  EXPECT_NEAR(res.percentile(90.0), 0.9, 0.07);
}

TEST(Reservoir, EmptyPercentileZero) {
  Reservoir res(8);
  EXPECT_DOUBLE_EQ(res.percentile(99.0), 0.0);
}

TEST(Percentile, ExtremeTailsInterpolateOnSmallSamples) {
  // R-7 on n=10 values 1..10: rank(p) = p/100 * 9, linearly interpolated
  // between order statistics. Far tails must not just clamp to the max —
  // they interpolate inside the last gap.
  std::vector<double> v;
  for (int i = 10; i >= 1; --i) v.push_back(i);  // unsorted on purpose
  EXPECT_NEAR(percentile(v, 99.0), 9.91, 1e-12);
  EXPECT_NEAR(percentile(v, 99.9), 9.991, 1e-12);
  EXPECT_NEAR(percentile(v, 99.99), 9.9991, 1e-12);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
}

TEST(TailSummaryStats, MatchesDirectPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(static_cast<double>(i));
  const TailSummary t = tail_summary(v);
  EXPECT_EQ(t.count, 1000u);
  EXPECT_DOUBLE_EQ(t.mean, 500.5);
  EXPECT_DOUBLE_EQ(t.p50, percentile(v, 50.0));
  EXPECT_DOUBLE_EQ(t.p90, percentile(v, 90.0));
  EXPECT_DOUBLE_EQ(t.p99, percentile(v, 99.0));
  EXPECT_DOUBLE_EQ(t.p999, percentile(v, 99.9));
  EXPECT_DOUBLE_EQ(t.p9999, percentile(v, 99.99));
  // p99 of 1..1000 under R-7: rank 989.01 -> between 990 and 991.
  EXPECT_NEAR(t.p99, 990.01, 1e-9);
}

TEST(TailSummaryStats, EmptyAndReservoirPaths) {
  std::vector<double> empty;
  const TailSummary t = tail_summary(empty);
  EXPECT_EQ(t.count, 0u);
  EXPECT_DOUBLE_EQ(t.p9999, 0.0);
  Reservoir res(64, 5);
  for (int i = 0; i < 32; ++i) res.add(i);
  const TailSummary r = res.tail_summary();
  EXPECT_EQ(r.count, 32u);
  EXPECT_DOUBLE_EQ(r.p50, res.percentile(50.0));
}

}  // namespace
}  // namespace gsight::stats
