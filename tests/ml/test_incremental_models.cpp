#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/incremental_forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/svr.hpp"
#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

enum class Kind { kForest, kKnn, kLinear, kSvr, kMlp };

std::unique_ptr<IncrementalRegressor> make(Kind kind) {
  switch (kind) {
    case Kind::kForest: {
      IncrementalForestConfig cfg;
      cfg.forest.n_trees = 30;
      return std::make_unique<IncrementalForest>(cfg, 1);
    }
    case Kind::kKnn:
      return std::make_unique<IncrementalKnn>(KnnConfig{}, 1);
    case Kind::kLinear:
      return std::make_unique<IncrementalLinear>(LinearConfig{}, 1);
    case Kind::kSvr:
      return std::make_unique<IncrementalSvr>(SvrConfig{}, 1);
    case Kind::kMlp: {
      MlpConfig cfg;
      cfg.hidden = {32};
      return std::make_unique<IncrementalMlp>(cfg, 1);
    }
  }
  return nullptr;
}

// Linear target: every model family must learn this.
Dataset linear_data(std::size_t n, stats::Rng& rng) {
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    const double c = rng.uniform(-1.0, 1.0);
    d.add(std::vector<double>{a, b, c}, 3.0 * a - 2.0 * b + 0.5 * c + 1.0);
  }
  return d;
}

class ModelSweep : public ::testing::TestWithParam<Kind> {};

TEST_P(ModelSweep, PredictsZeroBeforeTraining) {
  auto model = make(GetParam());
  EXPECT_DOUBLE_EQ(model->predict(std::vector<double>{0.1, 0.2, 0.3}), 0.0);
  EXPECT_EQ(model->samples_seen(), 0u);
}

TEST_P(ModelSweep, LearnsLinearTarget) {
  stats::Rng rng(21);
  auto model = make(GetParam());
  model->partial_fit(linear_data(1500, rng));
  const auto test = linear_data(300, rng);
  const auto pred = model->predict_all(test);
  std::vector<double> truth(test.targets());
  EXPECT_GT(r2(truth, pred), 0.85) << model->name();
}

TEST_P(ModelSweep, IncrementalUpdatesImproveAccuracy) {
  stats::Rng rng(22);
  auto model = make(GetParam());
  const auto test = linear_data(200, rng);
  model->partial_fit(linear_data(60, rng));
  const double err_small =
      rmse(test.targets(), model->predict_all(test));
  for (int batch = 0; batch < 6; ++batch) {
    model->partial_fit(linear_data(250, rng));
  }
  const double err_big = rmse(test.targets(), model->predict_all(test));
  // Strictly better for most models; ISVR's epsilon-insensitive tube stops
  // improving once residuals fall inside it, so allow a small tolerance.
  EXPECT_LT(err_big, err_small + 0.02) << model->name();
  EXPECT_EQ(model->samples_seen(), 60u + 6u * 250u);
}

TEST_P(ModelSweep, EmptyBatchIsNoop) {
  auto model = make(GetParam());
  model->partial_fit(Dataset(3));
  EXPECT_EQ(model->samples_seen(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::Values(Kind::kForest, Kind::kKnn,
                                           Kind::kLinear, Kind::kSvr,
                                           Kind::kMlp));

TEST(IncrementalForest, ImportanceExposed) {
  stats::Rng rng(23);
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 20;
  IncrementalForest forest(cfg, 2);
  forest.partial_fit(linear_data(500, rng));
  const auto imp = forest.importance();
  ASSERT_EQ(imp.size(), 3u);
  // Feature 0 (weight 3) should dominate feature 2 (weight 0.5).
  EXPECT_GT(imp[0], imp[2]);
}

TEST(IncrementalForest, AdaptsToConceptDrift) {
  stats::Rng rng(24);
  IncrementalForestConfig cfg;
  cfg.forest.n_trees = 30;
  cfg.refresh_fraction = 0.5;
  IncrementalForest forest(cfg, 3);
  // Regime 1: y = +10 x0.
  Dataset r1(1), r2(1);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    r1.add(std::vector<double>{x}, 10.0 * x);
    r2.add(std::vector<double>{x}, -10.0 * x);
  }
  forest.partial_fit(r1);
  EXPECT_GT(forest.predict(std::vector<double>{0.5}), 3.0);
  // Regime 2 arrives in several batches; buffer mixes but drift should
  // pull predictions down (mix of both regimes averages toward 0).
  for (int i = 0; i < 4; ++i) forest.partial_fit(r2);
  EXPECT_LT(forest.predict(std::vector<double>{0.5}), 3.0);
}

TEST(IncrementalKnn, ExactNeighborRecall) {
  IncrementalKnn knn(KnnConfig{.k = 1, .weighted = false}, 1);
  Dataset d(2);
  d.add(std::vector<double>{0.0, 0.0}, 1.0);
  d.add(std::vector<double>{10.0, 10.0}, 2.0);
  knn.partial_fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.2, -0.1}), 1.0);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{9.0, 11.0}), 2.0);
}

TEST(IncrementalLinear, RecoversCoefficients) {
  stats::Rng rng(25);
  LinearConfig cfg;
  cfg.epochs_per_batch = 40;
  IncrementalLinear lin(cfg, 1);
  lin.partial_fit(linear_data(2000, rng));
  // Scaled-space weights can't be compared directly, but predictions can.
  EXPECT_NEAR(lin.predict(std::vector<double>{0.5, 0.0, 0.0}), 2.5, 0.15);
  EXPECT_NEAR(lin.predict(std::vector<double>{0.0, 0.5, 0.0}), 0.0, 0.15);
}

TEST(IncrementalSvr, RobustToOutliers) {
  stats::Rng rng(26);
  Dataset d(1);
  for (int i = 0; i < 800; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    double y = 2.0 * x;
    if (i % 100 == 0) y += 50.0;  // gross outliers
    d.add(std::vector<double>{x}, y);
  }
  SvrConfig cfg;
  cfg.epochs_per_batch = 30;
  IncrementalSvr svr(cfg, 1);
  svr.partial_fit(d);
  // The epsilon-insensitive loss should mostly ignore the outliers.
  EXPECT_NEAR(svr.predict(std::vector<double>{0.5}), 1.0, 0.6);
}

TEST(IncrementalMlp, FitsNonlinearTarget) {
  stats::Rng rng(27);
  Dataset d(1);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    d.add(std::vector<double>{x}, x * x);
  }
  MlpConfig cfg;
  cfg.hidden = {32};
  cfg.epochs_per_batch = 30;
  IncrementalMlp mlp(cfg, 1);
  mlp.partial_fit(d);
  EXPECT_NEAR(mlp.predict(std::vector<double>{1.5}), 2.25, 0.5);
  EXPECT_NEAR(mlp.predict(std::vector<double>{-1.5}), 2.25, 0.5);
  EXPECT_NEAR(mlp.predict(std::vector<double>{0.0}), 0.0, 0.5);
}

}  // namespace
}  // namespace gsight::ml
