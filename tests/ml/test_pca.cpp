#include "ml/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace gsight::ml {
namespace {

// Data living on a 2-D plane embedded in 10-D space plus small noise.
Dataset planar_data(std::size_t n, double noise, stats::Rng& rng) {
  Dataset d(10);
  std::vector<double> u(10), v(10);
  for (std::size_t j = 0; j < 10; ++j) {
    u[j] = j < 5 ? 1.0 : 0.0;
    v[j] = j % 2 == 0 ? 0.5 : -0.5;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal(0.0, 3.0);
    const double b = rng.normal(0.0, 1.0);
    std::vector<double> x(10);
    for (std::size_t j = 0; j < 10; ++j) {
      x[j] = 2.0 + a * u[j] + b * v[j] + noise * rng.normal();
    }
    d.add(x, 0.0);
  }
  return d;
}

TEST(Pca, RequiresTwoRows) {
  Pca pca;
  Dataset d(3);
  d.add(std::vector<double>{1, 2, 3}, 0.0);
  EXPECT_THROW(pca.fit(d), std::invalid_argument);
}

TEST(Pca, RecoversIntrinsicDimension) {
  stats::Rng rng(5);
  const auto d = planar_data(400, 0.01, rng);
  PcaConfig cfg;
  cfg.components = 4;
  Pca pca(cfg);
  pca.fit(d);
  ASSERT_GE(pca.components(), 2u);
  const auto& var = pca.explained_variance();
  // The first two components dominate; the rest is noise-level.
  EXPECT_GT(var[0], var[1]);
  if (var.size() > 2) {
    EXPECT_GT(var[1], 20.0 * var[2]);
  }
  EXPECT_GT(pca.explained_variance_ratio(), 0.99);
}

TEST(Pca, TransformDimensionsAndCentering) {
  stats::Rng rng(7);
  const auto d = planar_data(200, 0.05, rng);
  PcaConfig cfg;
  cfg.components = 3;
  Pca pca(cfg);
  pca.fit(d);
  const auto z = pca.transform(d.x(0));
  EXPECT_EQ(z.size(), pca.components());
  // Projections of the dataset should be zero-mean.
  std::vector<double> sum(pca.components(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto zi = pca.transform(d.x(i));
    for (std::size_t c = 0; c < zi.size(); ++c) sum[c] += zi[c];
  }
  for (double s : sum) {
    EXPECT_NEAR(s / static_cast<double>(d.size()), 0.0, 1e-6);
  }
}

TEST(Pca, InverseTransformReconstructsPlanarData) {
  stats::Rng rng(9);
  const auto d = planar_data(300, 0.01, rng);
  PcaConfig cfg;
  cfg.components = 2;
  Pca pca(cfg);
  pca.fit(d);
  double worst = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto x = d.x(i);
    const auto back = pca.inverse_transform(pca.transform(x));
    for (std::size_t j = 0; j < x.size(); ++j) {
      worst = std::max(worst, std::abs(back[j] - x[j]));
    }
  }
  EXPECT_LT(worst, 0.1);  // noise-level reconstruction error
}

TEST(Pca, ComponentsAreOrthonormal) {
  stats::Rng rng(11);
  const auto d = planar_data(300, 0.5, rng);
  PcaConfig cfg;
  cfg.components = 4;
  Pca pca(cfg);
  pca.fit(d);
  // Re-derive component vectors by transforming unit deviations is
  // awkward; instead verify via transform of the components themselves:
  // transform(mean + c_i) should be ~e_i * 1.
  for (std::size_t a = 0; a < pca.components(); ++a) {
    // Build mean + component_a via inverse transform of e_a.
    std::vector<double> e(pca.components(), 0.0);
    e[a] = 1.0;
    const auto x = pca.inverse_transform(e);
    const auto z = pca.transform(x);
    for (std::size_t b = 0; b < z.size(); ++b) {
      // Noise-level components have nearly degenerate eigenvalues, which
      // bounds power-iteration accuracy; 1e-4 is ample for feature use.
      EXPECT_NEAR(z[b], a == b ? 1.0 : 0.0, 1e-4) << a << "," << b;
    }
  }
}

TEST(Pca, DatasetTransformKeepsTargets) {
  stats::Rng rng(13);
  auto d = planar_data(50, 0.1, rng);
  Dataset labelled(10);
  for (std::size_t i = 0; i < d.size(); ++i) {
    labelled.add(d.x(i), static_cast<double>(i));
  }
  PcaConfig cfg;
  cfg.components = 2;
  Pca pca(cfg);
  pca.fit(labelled);
  const auto reduced = pca.transform(labelled);
  EXPECT_EQ(reduced.feature_count(), 2u);
  EXPECT_EQ(reduced.size(), labelled.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    EXPECT_DOUBLE_EQ(reduced.y(i), static_cast<double>(i));
  }
}

TEST(Pca, RankDeficientDataStopsEarly) {
  // All rows identical: zero variance, no components.
  Dataset d(4);
  for (int i = 0; i < 10; ++i) {
    d.add(std::vector<double>{1.0, 2.0, 3.0, 4.0}, 0.0);
  }
  Pca pca;
  pca.fit(d);
  EXPECT_EQ(pca.components(), 0u);
  EXPECT_FALSE(pca.fitted());
}

}  // namespace
}  // namespace gsight::ml
