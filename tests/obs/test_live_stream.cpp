// LiveStreamSink / parse_live_line tests — the gsight-live/v1 NDJSON
// introspection surface behind `gsight serve-bench --live` and
// `gsight tail`. Determinism matters most here: twin emissions must be
// byte-identical, which is what the fleet twin-run gate compares.
#include "obs/live_stream.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsight::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(LiveStream, HelloIsFirstAndSeqIsSequential) {
  std::ostringstream os;
  LiveStreamSink sink(os);
  sink.hello("test", {{"replicas", "4"}, {"router", "hash"}});
  sink.mark(0.5, "fleet.drain", {{"replica", "1"}});
  sink.mark(0.75, "fleet.readd");

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(sink.records(), 3u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto rec = parse_live_line(lines[i]);
    ASSERT_TRUE(rec.has_value()) << lines[i];
    ASSERT_NE(rec->find("seq"), nullptr);
    EXPECT_EQ(rec->find("seq")->number(), static_cast<double>(i));
  }
  const auto hello = parse_live_line(lines[0]);
  EXPECT_EQ(hello->find("schema")->string(), kLiveSchema);
  EXPECT_EQ(hello->find("type")->string(), "hello");
  EXPECT_EQ(hello->find("source")->string(), "test");
  EXPECT_EQ(hello->find("meta")->find("router")->string(), "hash");
}

TEST(LiveStream, MetricDeltasEmitOnlyChanges) {
  std::ostringstream os;
  LiveStreamSink sink(os);
  sink.hello("test");

  MetricsRegistry registry;
  registry.counter("requests").inc(3);
  registry.gauge("depth").set(7);
  sink.metric_deltas(1.0, registry);  // first emission: both instances

  registry.counter("requests").inc(2);
  sink.metric_deltas(2.0, registry);  // only the counter changed

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 4u) << "hello + 2 first-emission + 1 delta";
  // samples() orders counters before gauges, so the counter leads.
  const auto first = parse_live_line(lines[1]);
  EXPECT_EQ(first->find("type")->string(), "metric");
  EXPECT_EQ(first->find("name")->string(), "requests");
  EXPECT_EQ(first->find("kind")->string(), "counter");
  EXPECT_EQ(first->find("value")->number(), 3.0);
  EXPECT_EQ(first->find("delta")->number(), 3.0);
  const auto second = parse_live_line(lines[2]);
  EXPECT_EQ(second->find("name")->string(), "depth");
  EXPECT_EQ(second->find("kind")->string(), "gauge");
  const auto delta = parse_live_line(lines[3]);
  EXPECT_EQ(delta->find("name")->string(), "requests");
  EXPECT_EQ(delta->find("ts_s")->number(), 2.0);
  EXPECT_EQ(delta->find("value")->number(), 5.0);
  EXPECT_EQ(delta->find("delta")->number(), 2.0);
}

TEST(LiveStream, HistogramDeltasCarrySum) {
  std::ostringstream os;
  LiveStreamSink sink(os);
  sink.hello("test");
  MetricsRegistry registry;
  registry.histogram("latency").observe(2.0);
  registry.histogram("latency").observe(4.0);
  sink.metric_deltas(1.0, registry);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  const auto rec = parse_live_line(lines[1]);
  EXPECT_EQ(rec->find("kind")->string(), "histogram");
  EXPECT_EQ(rec->find("value")->number(), 2.0);  // count
  EXPECT_EQ(rec->find("sum")->number(), 6.0);
}

TEST(LiveStream, TracerEventsStreamAsSpans) {
  std::ostringstream os;
  LiveStreamSink sink(os);
  sink.hello("test");
  Tracer tracer(&sink);
  tracer.complete(1.0, 0.25, "poll", "serve", 1, 2, {{"replica", "0"}});
  tracer.instant(1.5, "drain", "serve", 1, 2);

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  const auto span = parse_live_line(lines[1]);
  EXPECT_EQ(span->find("type")->string(), "span");
  EXPECT_EQ(span->find("ph")->string(), "X");
  EXPECT_EQ(span->find("name")->string(), "poll");
  EXPECT_EQ(span->find("dur_s")->number(), 0.25);
  EXPECT_EQ(span->find("args")->find("replica")->string(), "0");
  const auto instant = parse_live_line(lines[2]);
  EXPECT_EQ(instant->find("ph")->string(), "i");
  EXPECT_EQ(instant->find("dur_s"), nullptr);
}

TEST(LiveStream, TwinEmissionsAreByteIdentical) {
  std::string streams[2];
  for (auto& out : streams) {
    std::ostringstream os;
    LiveStreamSink sink(os);
    sink.hello("twin", {{"seed", "99"}});
    MetricsRegistry registry;
    for (int step = 0; step < 5; ++step) {
      registry.counter("fleet.submitted").inc(3);
      registry.gauge("fleet.watermark").set(step);
      sink.metric_deltas(0.1 * step, registry);
      sink.mark(0.1 * step + 0.05, "fleet.publish",
                {{"version", std::to_string(step)}});
    }
    out = os.str();
  }
  EXPECT_EQ(streams[0], streams[1]);
}

TEST(LiveStream, ParseRoundTripsEscapesAndRejectsGarbage) {
  std::ostringstream os;
  LiveStreamSink sink(os);
  sink.hello("tab\there \"quoted\"");
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1u);
  const auto rec = parse_live_line(lines[0]);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->find("source")->string(), "tab\there \"quoted\"");

  std::string error;
  EXPECT_FALSE(parse_live_line("", &error).has_value());
  EXPECT_FALSE(parse_live_line("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(parse_live_line("{\"a\":}", &error).has_value());
  EXPECT_FALSE(parse_live_line("{\"a\":nope}", &error).has_value());
  EXPECT_FALSE(error.empty());

  const auto nested = parse_live_line(
      R"({"a":[1,2,{"b":true,"c":null}],"d":-1.5e3})");
  ASSERT_TRUE(nested.has_value());
  ASSERT_NE(nested->find("a"), nullptr);
  EXPECT_EQ(nested->find("a")->size(), 3u);
  EXPECT_TRUE(nested->find("a")->items()[2].find("b")->boolean());
  EXPECT_EQ(nested->find("d")->number(), -1500.0);
}

TEST(LiveStream, RegistrySamplesAreDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.gauge("z").set(1);
  registry.counter("b").inc(1);
  registry.counter("a", {{"replica", "1"}}).inc(1);
  registry.counter("a", {{"replica", "0"}}).inc(1);
  registry.histogram("h").observe(1.0);
  const auto samples = registry.samples();
  ASSERT_EQ(samples.size(), 5u);
  // Counters (families by name, instances by label) then gauges then
  // histograms — the order metric_deltas emits in.
  EXPECT_EQ(samples[0].name, "a");
  EXPECT_EQ(samples[1].name, "a");
  EXPECT_LT(samples[0].labels, samples[1].labels);
  EXPECT_EQ(samples[2].name, "b");
  EXPECT_EQ(samples[3].name, "z");
  EXPECT_EQ(samples[3].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[4].kind, MetricSample::Kind::kHistogram);
}

}  // namespace
}  // namespace gsight::obs
