// Tests for the tracer and sinks (src/obs/trace.hpp): disabled-path
// behaviour, Chrome trace-event serialisation, streaming vs in-memory
// parity, and the process-wide default sink hook.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using gsight::obs::chrome_trace_event_json;
using gsight::obs::Lanes;
using gsight::obs::MemoryTraceSink;
using gsight::obs::StreamTraceSink;
using gsight::obs::TraceEvent;
using gsight::obs::Tracer;

TEST(Trace, DisabledTracerEmitsNothing) {
  Tracer t;  // null sink
#if GSIGHT_OBS_ENABLED
  EXPECT_FALSE(t.enabled());
#endif
  // All helpers must be safe no-ops without a sink.
  t.complete(0.0, 1.0, "x", "c", 1, 0);
  t.instant(0.0, "x", "c", 1, 0);
  t.counter(0.0, "x", 1, {{"v", "1"}});
  t.async_begin(0.0, "x", "c", 7);
  t.async_end(1.0, "x", "c", 7);
}

TEST(Trace, HelpersPopulateEventFields) {
  MemoryTraceSink sink;
  Tracer t(&sink);
  t.complete(1.5, 0.25, "server.exec", "sim", Lanes::kPlatform, 103,
             {{"ipc", "1.2"}});
  t.async_begin(0.5, "request", "req", 42, {{"app", "social"}});
  t.async_end(2.0, "request", "req", 42);
#if GSIGHT_OBS_ENABLED
  ASSERT_EQ(sink.size(), 3u);
  const auto& e = sink.events()[0];
  EXPECT_EQ(e.kind, TraceEvent::Kind::kComplete);
  EXPECT_STREQ(e.name, "server.exec");
  EXPECT_DOUBLE_EQ(e.ts_s, 1.5);
  EXPECT_DOUBLE_EQ(e.dur_s, 0.25);
  EXPECT_EQ(e.pid, Lanes::kPlatform);
  EXPECT_EQ(e.tid, 103u);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].second, "1.2");
  EXPECT_EQ(sink.events()[1].id, 42u);
  EXPECT_EQ(sink.events()[1].pid, Lanes::kRequests);
#else
  EXPECT_EQ(sink.size(), 0u);  // compiled out
#endif
}

TEST(Trace, EventJsonUsesMicrosecondTimestamps) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kComplete;
  e.name = "span";
  e.cat = "sim";
  e.ts_s = 0.001;   // 1000 µs
  e.dur_s = 0.0005; // 500 µs
  e.pid = 1;
  e.tid = 2;
  const std::string json = chrome_trace_event_json(e);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"span\""), std::string::npos) << json;
}

TEST(Trace, AsyncEventsCarryCorrelationId) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kAsyncBegin;
  e.name = "request";
  e.cat = "req";
  e.id = 99;
  const std::string json = chrome_trace_event_json(e);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":99"), std::string::npos) << json;
}

#if GSIGHT_OBS_ENABLED
TEST(Trace, StreamingSinkMatchesMemorySink) {
  MemoryTraceSink mem;
  std::ostringstream os;
  {
    StreamTraceSink stream(os);
    Tracer tm(&mem);
    Tracer ts(&stream);
    for (Tracer* t : {&tm, &ts}) {
      t->instant(0.0, "a", "c", 1, 0);
      t->complete(0.5, 0.1, "b", "c", 1, 0, {{"k", "v"}});
      t->counter(1.0, "depth", 1, {{"queue", "3"}});
    }
    stream.close();
  }
  EXPECT_EQ(os.str(), mem.chrome_trace_string());
}

TEST(Trace, EmptyTraceIsStillValidDocument) {
  MemoryTraceSink mem;
  const std::string doc = mem.chrome_trace_string();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos) << doc;
  std::ostringstream os;
  {
    StreamTraceSink stream(os);
    stream.close();
  }
  EXPECT_EQ(os.str(), doc);
}

TEST(Trace, DefaultSinkIsProcessWideAndResettable) {
  EXPECT_EQ(gsight::obs::default_trace_sink(), nullptr);
  MemoryTraceSink sink;
  gsight::obs::set_default_trace_sink(&sink);
  EXPECT_EQ(gsight::obs::default_trace_sink(), &sink);
  gsight::obs::set_default_trace_sink(nullptr);
  EXPECT_EQ(gsight::obs::default_trace_sink(), nullptr);
}
#endif  // GSIGHT_OBS_ENABLED

}  // namespace
