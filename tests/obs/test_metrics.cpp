// Tests for MetricsRegistry (src/obs/metrics.hpp): find-or-create
// semantics, label canonicalisation, histogram bucket edges and
// non-finite routing, and deterministic JSON export.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace {

using gsight::obs::canonical_labels;
using gsight::obs::HistogramMetric;
using gsight::obs::Labels;
using gsight::obs::MetricsRegistry;

TEST(Metrics, CounterFindOrCreateReturnsSameInstance) {
  MetricsRegistry reg;
  auto& c1 = reg.counter("requests");
  auto& c2 = reg.counter("requests");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  c2.inc(2.0);
  EXPECT_DOUBLE_EQ(reg.counter("requests").value(), 3.0);
}

TEST(Metrics, LabelsDistinguishInstancesRegardlessOfOrder) {
  MetricsRegistry reg;
  auto& a = reg.counter("reqs", {{"app", "social"}, {"fn", "home"}});
  auto& same = reg.counter("reqs", {{"fn", "home"}, {"app", "social"}});
  auto& other = reg.counter("reqs", {{"app", "media"}});
  EXPECT_EQ(&a, &same);  // canonicalised by sorted key
  EXPECT_NE(&a, &other);
}

TEST(Metrics, CanonicalLabelsSortsByKey) {
  EXPECT_EQ(canonical_labels({{"b", "2"}, {"a", "1"}}), "a=1,b=2");
  EXPECT_EQ(canonical_labels({}), "");
}

TEST(Metrics, GaugeSetOverwrites) {
  MetricsRegistry reg;
  reg.gauge("depth").set(5.0);
  reg.gauge("depth").set(2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 2.0);
}

TEST(Metrics, HistogramBucketsAreUpperBoundInclusive) {
  HistogramMetric h({1.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(5.0);   // <= 10
  h.observe(100.0); // +inf bucket
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
}

TEST(Metrics, HistogramRoutesNonFiniteSamplesAside) {
  HistogramMetric h({1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(-std::numeric_limits<double>::infinity());
  h.observe(0.5);
  EXPECT_EQ(h.nonfinite_count(), 3u);
  EXPECT_EQ(h.count(), 1u);       // only the finite sample is counted
  EXPECT_DOUBLE_EQ(h.sum(), 0.5); // and summed
}

TEST(Metrics, RegistrySizeCountsAllInstances) {
  MetricsRegistry reg;
  reg.counter("a");
  reg.counter("a", {{"k", "v"}});
  reg.gauge("b");
  reg.histogram("c");
  EXPECT_EQ(reg.size(), 4u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, ExportIsDeterministicAcrossInsertionOrder) {
  // Two registries populated in different orders with identical final
  // state must serialise byte-identically (map-ordered export).
  MetricsRegistry a;
  a.counter("reqs", {{"app", "x"}}).inc(3.0);
  a.counter("reqs", {{"app", "y"}}).inc(1.0);
  a.gauge("depth").set(2.0);

  MetricsRegistry b;
  b.gauge("depth").set(2.0);
  b.counter("reqs", {{"app", "y"}}).inc(1.0);
  b.counter("reqs", {{"app", "x"}}).inc(3.0);

  EXPECT_EQ(a.to_json_string(0), b.to_json_string(0));
}

TEST(Metrics, ExportContainsValuesAndLabels) {
  MetricsRegistry reg;
  reg.counter("hits", {{"app", "social"}}).inc(7.0);
  reg.histogram("lat", {}, {0.1, 1.0}).observe(0.05);
  const std::string out = reg.to_json_string(0);
  EXPECT_NE(out.find("\"hits\""), std::string::npos) << out;
  EXPECT_NE(out.find("app=social"), std::string::npos) << out;
  EXPECT_NE(out.find("7"), std::string::npos) << out;
  EXPECT_NE(out.find("\"lat\""), std::string::npos) << out;
}

}  // namespace
