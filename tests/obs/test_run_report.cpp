// Tests for RunReport (src/obs/run_report.hpp): document assembly,
// schema shape, optional sections, and file writing.
#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

using gsight::obs::Json;
using gsight::obs::MetricsRegistry;
using gsight::obs::RunReport;

TEST(RunReport, MinimalDocumentHasSchemaFields) {
  RunReport r("micro");
  r.set_wall_time_s(1.25);
  const Json doc = r.to_json();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->string(), "gsight-bench-report/v1");
  ASSERT_NE(doc.find("bench"), nullptr);
  EXPECT_EQ(doc.find("bench")->string(), "micro");
  ASSERT_NE(doc.find("wall_time_s"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("wall_time_s")->number(), 1.25);
  ASSERT_NE(doc.find("results"), nullptr);
  EXPECT_TRUE(doc.find("results")->is_array());
  EXPECT_EQ(doc.find("results")->size(), 0u);
}

TEST(RunReport, ResultsKeepInsertionOrderAndUnits) {
  RunReport r("fig9");
  r.add_result("irfr_error_pct", 6.2, "%");
  r.add_result("samples", 1000.0);
  EXPECT_EQ(r.result_count(), 2u);
  const Json doc = r.to_json();
  const Json* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 2u);
  const Json& first = results->items()[0];
  EXPECT_EQ(first.find("name")->string(), "irfr_error_pct");
  EXPECT_DOUBLE_EQ(first.find("value")->number(), 6.2);
  EXPECT_EQ(first.find("unit")->string(), "%");
  // Unit-less rows omit the key entirely rather than writing "".
  EXPECT_EQ(results->items()[1].find("unit"), nullptr);
}

TEST(RunReport, OptionalSectionsOnlyAppearWhenUsed) {
  RunReport bare("a");
  const Json doc = bare.to_json();
  EXPECT_EQ(doc.find("series"), nullptr);
  EXPECT_EQ(doc.find("meta"), nullptr);
  EXPECT_EQ(doc.find("metrics"), nullptr);

  RunReport full("b");
  Json curve = Json::array();
  curve.push_back(1.0);
  curve.push_back(2.0);
  full.add_series("latency_curve", curve);
  full.set_meta("seed", "1313");
  MetricsRegistry reg;
  reg.counter("events").inc(10.0);
  full.attach_metrics(reg);
  const Json doc2 = full.to_json();
  ASSERT_NE(doc2.find("series"), nullptr);
  ASSERT_NE(doc2.find("series")->find("latency_curve"), nullptr);
  ASSERT_NE(doc2.find("meta"), nullptr);
  EXPECT_EQ(doc2.find("meta")->find("seed")->string(), "1313");
  EXPECT_NE(doc2.find("metrics"), nullptr);
}

TEST(RunReport, WriteProducesBenchNamedFile) {
  const std::string dir = ::testing::TempDir();
  RunReport r("smoke_test");
  r.add_result("x", 1.0);
  r.set_wall_time_s(0.1);
  const std::string path = r.write(dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_smoke_test.json"), std::string::npos) << path;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), r.to_json().dump_string(2) + "\n");
  std::remove(path.c_str());
}

TEST(RunReport, WriteFileFailsGracefullyOnBadPath) {
  RunReport r("x");
  EXPECT_FALSE(r.write_file("/nonexistent-dir-zz/nope.json"));
  EXPECT_EQ(r.write("/nonexistent-dir-zz"), "");
}

TEST(RunReport, DocumentIsByteStable) {
  auto build = [] {
    RunReport r("stable");
    r.set_wall_time_s(2.0);
    r.add_result("a", 1.0 / 3.0, "s");
    r.set_meta("note", "twin");
    return r.to_json().dump_string(2);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
