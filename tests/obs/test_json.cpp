// Tests for the ordered JSON writer (src/obs/json.hpp): insertion-order
// objects, deterministic number formatting, escaping, and the null
// handling the exporters rely on.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace {

using gsight::obs::Json;
using gsight::obs::json_escape;
using gsight::obs::json_number;

TEST(Json, ScalarKindsSerialise) {
  EXPECT_EQ(Json().dump_string(0), "null");
  EXPECT_EQ(Json(true).dump_string(0), "true");
  EXPECT_EQ(Json(false).dump_string(0), "false");
  EXPECT_EQ(Json(42).dump_string(0), "42");
  EXPECT_EQ(Json("hi").dump_string(0), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json j = Json::object();
  j.set("zeta", 1);
  j.set("alpha", 2);
  j.set("mid", 3);
  EXPECT_EQ(j.dump_string(0), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(Json, SetOverwritesInPlaceWithoutReordering) {
  Json j = Json::object();
  j.set("a", 1);
  j.set("b", 2);
  j.set("a", 9);
  EXPECT_EQ(j.dump_string(0), R"({"a":9,"b":2})");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, NullPromotesToContainerOnFirstUse) {
  Json arr;  // null
  arr.push_back(1);
  arr.push_back("x");
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.dump_string(0), R"([1,"x"])");

  Json obj;  // null
  obj.set("k", true);
  EXPECT_TRUE(obj.is_object());
  EXPECT_EQ(obj.dump_string(0), R"({"k":true})");
}

TEST(Json, FindReturnsMemberOrNull) {
  Json j = Json::object();
  j.set("present", 7);
  ASSERT_NE(j.find("present"), nullptr);
  EXPECT_EQ(j.find("present")->number(), 7.0);
  EXPECT_EQ(j.find("absent"), nullptr);
  EXPECT_EQ(Json(3.0).find("anything"), nullptr);
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  Json j = Json::array();
  j.push_back(std::numeric_limits<double>::quiet_NaN());
  j.push_back(std::numeric_limits<double>::infinity());
  j.push_back(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(j.dump_string(0), "[null,null,null]");
}

TEST(Json, NumberFormattingIsDeterministicAndRoundTrips) {
  // Equal doubles must serialise identically (byte-stable exports), and
  // the representation must round-trip exactly.
  const double values[] = {0.0,    -0.0,   1.0,        1.0 / 3.0,
                           1e-300, 2.5e17, 1234.56789, -7.25};
  for (const double v : values) {
    const std::string a = json_number(v);
    const std::string b = json_number(v);
    EXPECT_EQ(a, b);
    EXPECT_EQ(std::stod(a), v) << a;
  }
  // Integral doubles print without an exponent or fraction.
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-12.0), "-12");
}

TEST(Json, EscapingControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, PrettyPrintNestsWithIndent) {
  Json j = Json::object();
  j.set("list", Json::array());
  Json inner = Json::object();
  inner.set("x", 1);
  j.set("obj", inner);
  const std::string pretty = j.dump_string(2);
  EXPECT_NE(pretty.find("{\n"), std::string::npos);
  EXPECT_NE(pretty.find("  \"list\""), std::string::npos);
  // Compact form has no whitespace at all.
  const std::string compact = j.dump_string(0);
  EXPECT_EQ(compact.find(' '), std::string::npos);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(Json, DumpToStreamMatchesDumpString) {
  Json j = Json::object();
  j.set("a", Json::array());
  std::ostringstream os;
  j.dump(os, 2);
  EXPECT_EQ(os.str(), j.dump_string(2));
}

}  // namespace
