#include <gtest/gtest.h>

#include <set>

#include "sched/bestfit.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sched/kube_spread.hpp"
#include "sched/worstfit.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::sched {
namespace {

prof::AppProfile make_profile(const std::string& name, std::size_t fns,
                              double cores, double mem) {
  prof::AppProfile p;
  p.app_name = name;
  p.cls = wl::WorkloadClass::kLatencySensitive;
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    fp.app_name = name;
    fp.fn_name = name + std::to_string(i);
    fp.demand.cores = cores;
    fp.mem_alloc_gb = mem;
    fp.solo_ipc = 1.5;
    fp.metrics[static_cast<std::size_t>(prof::Metric::kIpc)] = 1.5;
    p.functions.push_back(fp);
  }
  return p;
}

DeploymentState state_with_loads(std::vector<std::pair<double, double>> used) {
  DeploymentState state;
  state.servers = used.size();
  for (const auto& [cores, mem] : used) {
    ServerLoad l;
    l.cores_capacity = 10.0;
    l.mem_capacity = 64.0;
    l.cores_committed = cores;
    l.mem_committed = mem;
    l.instances = cores > 0.0 ? 1 : 0;
    state.load.push_back(l);
  }
  return state;
}

/// Predictor stub with a controllable verdict.
struct StubPredictor final : core::ScenarioPredictor {
  double value = 2.0;
  mutable std::size_t calls = 0;
  double predict(const core::Scenario&) const override {
    ++calls;
    return value;
  }
  void observe(const core::Scenario&, double) override {}
  void flush() override {}
  std::string name() const override { return "stub"; }
};

TEST(SnapshotLoad, ReflectsResidents) {
  sim::PlatformConfig pc;
  pc.servers = 2;
  pc.server = sim::ServerConfig::socket();
  sim::Platform platform(pc);
  auto app = wl::social_network();
  platform.deploy(app, std::vector<std::size_t>(9, 1));
  const auto load = snapshot_load(platform);
  ASSERT_EQ(load.size(), 2u);
  EXPECT_EQ(load[0].instances, 0u);
  EXPECT_EQ(load[1].instances, 9u);
  EXPECT_GT(load[1].cores_committed, 0.0);
  EXPECT_GT(load[1].mem_committed, 0.0);
}

TEST(ScenarioFor, TargetInSlotZeroWithOverride) {
  DeploymentState state = state_with_loads({{0, 0}, {0, 0}});
  auto a = make_profile("a", 2, 1.0, 0.5);
  auto b = make_profile("b", 1, 1.0, 0.5);
  state.workloads.push_back({"a", &a, {0, 1}, a.cls, {}});
  state.workloads.push_back({"b", &b, {0}, b.cls, {}});
  const std::vector<std::size_t> override_placement{1, 1};
  const auto s = scenario_for(state, 0, &override_placement, 10);
  ASSERT_EQ(s.workloads.size(), 2u);
  EXPECT_EQ(s.workloads[0].profile, &a);
  EXPECT_EQ(s.workloads[0].fn_to_server, override_placement);
  EXPECT_EQ(s.workloads[1].profile, &b);
}

TEST(ScenarioFor, SlotBudgetKeepsClosestCorunners) {
  DeploymentState state = state_with_loads({{0, 0}, {0, 0}, {0, 0}});
  auto t = make_profile("t", 1, 1.0, 0.5);
  auto near = make_profile("near", 1, 1.0, 0.5);
  auto far = make_profile("far", 1, 1.0, 0.5);
  state.workloads.push_back({"t", &t, {0}, t.cls, {}});
  state.workloads.push_back({"far", &far, {2}, far.cls, {}});
  state.workloads.push_back({"near", &near, {0}, near.cls, {}});
  const auto s = scenario_for(state, 0, nullptr, /*max_slots=*/2);
  ASSERT_EQ(s.workloads.size(), 2u);
  EXPECT_EQ(s.workloads[1].profile, &near);  // shares server 0 with target
}

TEST(BestFit, PicksSmallestFeasibleHeadroom) {
  BestFitScheduler bestfit;
  auto p = make_profile("p", 1, 2.0, 1.0);
  // Server 1 is the fullest that still fits 2 cores.
  DeploymentState state = state_with_loads({{3, 8}, {7, 8}, {9.5, 8}});
  const auto placement = bestfit.place_workload(p, state);
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_EQ(placement[0], 1u);
}

TEST(BestFit, RefusesWhenNothingFits) {
  BestFitScheduler bestfit;
  auto p = make_profile("p", 1, 8.0, 1.0);
  DeploymentState state = state_with_loads({{5, 8}, {6, 8}});
  const auto placement = bestfit.place_workload(p, state);
  EXPECT_EQ(placement[0], kRefuse);
}

TEST(BestFit, PredictorVetoesPlacement) {
  StubPredictor stub;
  stub.value = 0.1;  // below any floor
  BestFitScheduler bestfit(&stub);
  auto p = make_profile("p", 1, 2.0, 1.0);
  p.cls = wl::WorkloadClass::kLatencySensitive;
  DeploymentState state = state_with_loads({{3, 8}});
  // Give the new workload an SLA floor via state_plus: place_workload
  // builds it from the profile; floors live in DeployedWorkload.sla and
  // the new workload has none -> passes. Attach a deployed LS with floor.
  auto other = make_profile("other", 1, 1.0, 0.5);
  state.workloads.push_back(
      {"other", &other, {0}, wl::WorkloadClass::kLatencySensitive,
       core::Sla{0.01, 1.0}});
  // Pythia's policy checks only the NEW workload, which has no floor, so
  // the placement passes despite the stub's low value.
  const auto placement = bestfit.place_workload(p, state);
  EXPECT_NE(placement[0], kRefuse);
}

TEST(WorstFit, PicksMostFreeCores) {
  WorstFitScheduler worstfit;
  auto p = make_profile("p", 1, 1.0, 1.0);
  DeploymentState state = state_with_loads({{8, 8}, {2, 8}, {5, 8}});
  const auto placement = p.functions.size() == 1
                             ? worstfit.place_workload(p, state)
                             : std::vector<std::size_t>{};
  EXPECT_EQ(placement[0], 1u);
}

TEST(WorstFit, SpreadsMultiFunctionWorkload) {
  WorstFitScheduler worstfit;
  auto p = make_profile("p", 3, 3.0, 1.0);
  DeploymentState state = state_with_loads({{0, 0}, {0, 0}, {0, 0}});
  const auto placement = worstfit.place_workload(p, state);
  // Greedy max-free placement lands each function on a different server.
  std::set<std::size_t> servers(placement.begin(), placement.end());
  EXPECT_EQ(servers.size(), 3u);
}

TEST(WorstFit, FreezesNewWorkloadsDuringObservedViolation) {
  bool violating = true;
  WorstFitScheduler worstfit([&] { return violating; });
  auto p = make_profile("p", 1, 1.0, 1.0);
  DeploymentState state = state_with_loads({{0, 0}});
  EXPECT_EQ(worstfit.place_workload(p, state)[0], kRefuse);
  // Replica scale-outs stay allowed — they are the capacity relief that
  // clears the violation.
  auto s = state_with_loads({{0, 0}});
  auto prof = make_profile("x", 1, 1.0, 1.0);
  s.workloads.push_back({"x", &prof, {0}, prof.cls, {}});
  EXPECT_NE(worstfit.place_replica(0, 0, s), kRefuse);
  violating = false;
  EXPECT_NE(worstfit.place_workload(p, state)[0], kRefuse);
}

TEST(KubeSpread, BalancesCpuAndMemory) {
  KubeSpreadScheduler kube;
  auto p = make_profile("p", 1, 1.0, 4.0);
  // Server 0: cpu-heavy (6/10 cpu, 8/64 mem); server 1 balanced (3/10,
  // 20/64). Balanced allocation should prefer server 1.
  DeploymentState state = state_with_loads({{6, 8}, {3, 20}});
  EXPECT_EQ(kube.place_workload(p, state)[0], 1u);
}

TEST(KubeSpread, SpreadsAnAppAcrossServers) {
  KubeSpreadScheduler kube;
  auto p = make_profile("p", 4, 2.0, 4.0);
  DeploymentState state = state_with_loads({{0, 0}, {0, 0}, {0, 0}, {0, 0}});
  const auto placement = kube.place_workload(p, state);
  std::set<std::size_t> servers(placement.begin(), placement.end());
  // balancedResourceAllocation spreads n functions over up to n servers
  // (the partial-interference amplifier of §1).
  EXPECT_GE(servers.size(), 3u);
}

TEST(GsightScheduler, AcceptingPredictorPacksTight) {
  StubPredictor stub;
  stub.value = 10.0;  // everything passes
  GsightScheduler gsight(&stub);
  auto p = make_profile("p", 3, 1.0, 0.5);
  // One active server: full overlap (k=1) should pass immediately and put
  // all functions there (density goal).
  DeploymentState state = state_with_loads({{2, 4}, {0, 0}, {0, 0}, {0, 0}});
  auto other = make_profile("other", 1, 2.0, 4.0);
  state.workloads.push_back({"other", &other, {0},
                             wl::WorkloadClass::kLatencySensitive,
                             core::Sla{0.01, 1.0}});
  const auto placement = gsight.place_workload(p, state);
  for (std::size_t s : placement) EXPECT_EQ(s, 0u);
  EXPECT_GT(gsight.sla_checks(), 0u);
}

TEST(GsightScheduler, RejectingPredictorWidensSearch) {
  StubPredictor stub;
  stub.value = 0.0;  // every SLA check fails
  GsightScheduler gsight(&stub);
  auto p = make_profile("p", 2, 1.0, 0.5);
  p.cls = wl::WorkloadClass::kLatencySensitive;
  DeploymentState state = state_with_loads({{2, 4}, {0, 0}, {0, 0}, {0, 0}});
  auto other = make_profile("other", 1, 2.0, 4.0);
  state.workloads.push_back({"other", &other, {0},
                             wl::WorkloadClass::kLatencySensitive,
                             core::Sla{0.01, 1.0}});
  // The new workload carries its own SLA floor, so every attempt's check
  // fails against the always-zero stub.
  const auto placement =
      gsight.place_workload(p, state, core::Sla{0.01, 1.0});
  EXPECT_EQ(placement[0], kRefuse);
  EXPECT_EQ(gsight.refusals(), 1u);
  // Binary search attempted k = 1, 2, 4 (=S): multiple checks ran.
  EXPECT_GE(stub.calls, 3u);
}

TEST(GsightScheduler, ReplicaPlacementChecksNeighborsNotSelf) {
  StubPredictor stub;
  stub.value = 10.0;
  GsightScheduler gsight(&stub);
  DeploymentState state = state_with_loads({{5, 8}, {1, 2}});
  auto a = make_profile("a", 2, 1.0, 0.5);
  auto b = make_profile("b", 1, 1.0, 0.5);
  state.workloads.push_back({"a", &a, {0, 0},
                             wl::WorkloadClass::kLatencySensitive,
                             core::Sla{0.01, 1.0}});
  state.workloads.push_back({"b", &b, {0},
                             wl::WorkloadClass::kLatencySensitive,
                             core::Sla{0.01, 1.0}});
  // Scaling out workload a: the check covers neighbour b (shares server
  // 0), never a itself — its own degradation is what the replica fixes.
  const std::size_t server = gsight.place_replica(0, 1, state);
  EXPECT_NE(server, kRefuse);
  EXPECT_LT(server, 2u);
  EXPECT_GT(stub.calls, 0u);
  // A hostile verdict on the neighbour refuses the dense candidates but
  // widening still finds the empty-ish server.
  stub.value = 0.0;
  stub.calls = 0;
  const std::size_t wide = gsight.place_replica(0, 1, state);
  (void)wide;  // may refuse or widen depending on sharing; calls must happen
  EXPECT_GT(stub.calls, 0u);
}

TEST(SchedulerNames, Distinct) {
  StubPredictor stub;
  EXPECT_EQ(GsightScheduler(&stub).name(), "Gsight");
  EXPECT_EQ(BestFitScheduler().name(), "BestFit");
  EXPECT_EQ(BestFitScheduler(&stub).name(), "Pythia-BestFit");
  EXPECT_EQ(WorstFitScheduler().name(), "WorstFit");
  EXPECT_EQ(KubeSpreadScheduler().name(), "K8s-BalancedAlloc");
}

}  // namespace
}  // namespace gsight::sched
