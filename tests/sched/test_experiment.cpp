// Smoke-level integration of the full scheduling study (the benches run
// the paper-scale version).
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "sched/bestfit.hpp"
#include "sched/experiment.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sched/kube_spread.hpp"
#include "sched/worstfit.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::sched {
namespace {

struct ExperimentFixture : ::testing::Test {
  prof::ProfileStore store;
  ExperimentConfig cfg;

  void SetUp() override {
    cfg.servers = 4;
    cfg.server = sim::ServerConfig::socket();
    cfg.duration_s = 90.0;
    cfg.sample_period_s = 3.0;
    cfg.sla_window_s = 15.0;
    cfg.sc_job_period_s = 30.0;
    cfg.sc_scale = 0.05;
    cfg.trace.base_qps = 50.0;
    cfg.trace.day_seconds = 90.0;
    cfg.autoscaler.tick_s = 5.0;
    cfg.autoscaler.max_replicas = 6;

    prof::SoloProfilerConfig pcfg;
    pcfg.ls_profile_s = 15.0;
    pcfg.server = cfg.server;
    prof::SoloProfiler profiler(pcfg);
    store.put(profiler.profile(prof::ProfileRequest{wl::social_network()}));
    store.put(profiler.profile(prof::ProfileRequest{wl::e_commerce()}));
    store.put(profiler.profile(prof::ProfileRequest{wl::matmul(3.0 * cfg.sc_scale)}));
    store.put(profiler.profile(prof::ProfileRequest{wl::dd(3.0 * cfg.sc_scale)}));
    store.put(profiler.profile(prof::ProfileRequest{wl::video_processing(4.0 * cfg.sc_scale)}));
    store.put(profiler.profile(prof::ProfileRequest{wl::iot_collector()}));
  }
};

TEST_F(ExperimentFixture, WorstFitRunsAndReports) {
  SchedulingExperiment experiment(&store, cfg);
  WorstFitScheduler worstfit;
  const auto report = experiment.run(worstfit);
  EXPECT_EQ(report.scheduler, "WorstFit");
  EXPECT_GT(report.density_samples.size(), 10u);
  EXPECT_GT(report.mean_density(), 0.0);
  EXPECT_GT(report.mean_cpu_util(), 0.0);
  EXPECT_GT(report.mean_mem_util(), 0.0);
  EXPECT_GT(report.requests_completed, 100u);
  ASSERT_EQ(report.sla.size(), 2u);
  for (const auto& s : report.sla) {
    EXPECT_GT(s.sla_p99_s, 0.0);
    EXPECT_GE(s.satisfied_fraction, 0.0);
    EXPECT_LE(s.satisfied_fraction, 1.0);
  }
  EXPECT_GT(report.jobs_completed, 0u);
}

TEST_F(ExperimentFixture, GsightWithOptimisticPredictorPacksDenser) {
  struct Optimist final : core::ScenarioPredictor {
    double predict(const core::Scenario&) const override { return 100.0; }
    void observe(const core::Scenario&, double) override {}
    void flush() override {}
    std::string name() const override { return "optimist"; }
  } optimist;

  SchedulingExperiment experiment(&store, cfg);
  GsightScheduler gsight(&optimist);
  const auto g = experiment.run(gsight);

  EXPECT_EQ(g.scheduler, "Gsight");
  // The blind optimist packs everything onto one socket — throughput may
  // suffer, but the study must still run end-to-end and report sanely.
  EXPECT_GT(g.requests_completed + g.requests_failed, 50u);
  EXPECT_GT(g.density_samples.size(), 10u);
  ASSERT_EQ(g.sla.size(), 2u);
  EXPECT_GT(gsight.sla_checks(), 0u);
}

TEST_F(ExperimentFixture, AutoscalerEngagesUnderDiurnalLoad) {
  SchedulingExperiment experiment(&store, cfg);
  KubeSpreadScheduler kube;
  const auto report = experiment.run(kube);
  EXPECT_GT(report.scale_outs, 0u);
  // Density varies over the diurnal wave.
  const double lo = *std::min_element(report.density_samples.begin(),
                                      report.density_samples.end());
  const double hi = *std::max_element(report.density_samples.begin(),
                                      report.density_samples.end());
  EXPECT_GT(hi, lo);
}

}  // namespace
}  // namespace gsight::sched
