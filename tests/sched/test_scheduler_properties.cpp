// Property sweeps shared by every scheduler implementation.
#include <gtest/gtest.h>

#include <memory>

#include "sched/bestfit.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sched/kube_spread.hpp"
#include "sched/worstfit.hpp"

namespace gsight::sched {
namespace {

struct Always final : core::ScenarioPredictor {
  double predict(const core::Scenario&) const override { return 100.0; }
  void observe(const core::Scenario&, double) override {}
  void flush() override {}
  std::string name() const override { return "always"; }
};

prof::AppProfile random_profile(stats::Rng& rng, std::size_t fns) {
  prof::AppProfile p;
  p.app_name = "p";
  p.cls = wl::WorkloadClass::kLatencySensitive;
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    fp.fn_name = "f" + std::to_string(i);
    fp.demand.cores = rng.uniform(0.5, 3.0);
    fp.mem_alloc_gb = rng.uniform(0.1, 2.0);
    fp.solo_ipc = rng.uniform(0.8, 2.5);
    p.functions.push_back(fp);
  }
  return p;
}

DeploymentState random_state(stats::Rng& rng, std::size_t servers) {
  DeploymentState state;
  state.servers = servers;
  state.load.resize(servers);
  for (auto& l : state.load) {
    l.cores_capacity = 10.0;
    l.mem_capacity = 64.0;
    l.cores_committed = rng.uniform(0.0, 6.0);
    l.mem_committed = rng.uniform(0.0, 20.0);
    l.instances = rng.chance(0.7) ? 1 + rng.uniform_index(4) : 0;
  }
  return state;
}

enum class Kind { kGsight, kBestFit, kWorstFit, kKube };

std::unique_ptr<Scheduler> make(Kind kind, core::ScenarioPredictor* pred) {
  switch (kind) {
    case Kind::kGsight:
      return std::make_unique<GsightScheduler>(pred);
    case Kind::kBestFit:
      return std::make_unique<BestFitScheduler>(pred);
    case Kind::kWorstFit:
      return std::make_unique<WorstFitScheduler>();
    case Kind::kKube:
      return std::make_unique<KubeSpreadScheduler>();
  }
  return nullptr;
}

class SchedulerSweep : public ::testing::TestWithParam<Kind> {};

TEST_P(SchedulerSweep, PlacementsAreInRangeOrRefuse) {
  Always always;
  const auto scheduler = make(GetParam(), &always);
  stats::Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t servers = 2 + rng.uniform_index(7);
    auto state = random_state(rng, servers);
    const auto profile = random_profile(rng, 1 + rng.uniform_index(5));
    const auto placement = scheduler->place_workload(profile, state);
    ASSERT_EQ(placement.size(), profile.functions.size());
    for (std::size_t s : placement) {
      EXPECT_TRUE(s == kRefuse || s < servers) << scheduler->name();
    }
  }
}

TEST_P(SchedulerSweep, DeterministicGivenIdenticalState) {
  Always always;
  const auto scheduler = make(GetParam(), &always);
  stats::Rng rng(37);
  auto state = random_state(rng, 6);
  const auto profile = random_profile(rng, 4);
  const auto a = scheduler->place_workload(profile, state);
  const auto b = scheduler->place_workload(profile, state);
  EXPECT_EQ(a, b) << scheduler->name();
}

TEST_P(SchedulerSweep, ReplicaPlacementInRangeOrRefuse) {
  Always always;
  const auto scheduler = make(GetParam(), &always);
  stats::Rng rng(41);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t servers = 2 + rng.uniform_index(7);
    auto state = random_state(rng, servers);
    auto profile =
        std::make_unique<prof::AppProfile>(random_profile(rng, 3));
    DeployedWorkload dw;
    dw.profile = profile.get();
    dw.cls = wl::WorkloadClass::kLatencySensitive;
    for (std::size_t i = 0; i < 3; ++i) {
      dw.fn_to_server.push_back(rng.uniform_index(servers));
    }
    state.workloads.push_back(dw);
    const std::size_t s = scheduler->place_replica(0, 1, state);
    EXPECT_TRUE(s == kRefuse || s < servers) << scheduler->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::Values(Kind::kGsight, Kind::kBestFit,
                                           Kind::kWorstFit, Kind::kKube));

}  // namespace
}  // namespace gsight::sched
