// Cloning frontier: the PR-10 experiment must reproduce the qualitative
// result — gateway cloning lowers p99 on quiet servers and backfires
// (p99 worse than factor = 1) once every server carries heavy antagonists
// — for both service disciplines, and the sweep must be bit-identical at
// any thread count. The full default sweep is a sub-second run, so the
// suite executes it verbatim rather than a toy stand-in.
#include <gtest/gtest.h>

#include <string>

#include "obs/run_report.hpp"
#include "sched/cloning_frontier.hpp"

namespace gsight::sched {
namespace {

TEST(CloningFrontier, CloningHelpsQuietServersAndBackfiresUnderInterference) {
  CloningFrontierConfig cfg;  // the shipped defaults: d in {1,2,3}, bg {0,3}
  cfg.campaign.threads = 2;
  const CloningFrontierResult result = run_cloning_frontier(cfg);
  ASSERT_EQ(result.cells.size(), cfg.clone_factors.size() *
                                     cfg.interference_levels.size() *
                                     cfg.disciplines.size());
  for (const sim::ServiceDiscipline d : cfg.disciplines) {
    const FrontierCell* quiet_solo = result.find(1, 0, d);
    const FrontierCell* quiet_cloned = result.find(3, 0, d);
    const FrontierCell* loud_solo = result.find(1, 3, d);
    const FrontierCell* loud_cloned = result.find(3, 3, d);
    ASSERT_NE(quiet_solo, nullptr);
    ASSERT_NE(quiet_cloned, nullptr);
    ASSERT_NE(loud_solo, nullptr);
    ASSERT_NE(loud_cloned, nullptr);
    // Quiet servers: min-of-3 trims the jitter tail.
    EXPECT_LT(quiet_cloned->p99.mean, quiet_solo->p99.mean)
        << discipline_label(d);
    EXPECT_LT(quiet_cloned->p50.mean, quiet_solo->p50.mean)
        << discipline_label(d);
    // Three antagonists per server: the clones' own load pushes the
    // contended servers past saturation and the p99 inverts.
    EXPECT_GT(loud_cloned->p99.mean, loud_solo->p99.mean)
        << discipline_label(d);
    // Accounting: every cloned cell retracted (d-1) legs per completion.
    EXPECT_GT(loud_cloned->clones_cancelled.mean, 0.0);
    EXPECT_DOUBLE_EQ(loud_solo->clones_cancelled.mean, 0.0);
  }
}

TEST(CloningFrontier, ThreadCountNeverChangesTheSweep) {
  CloningFrontierConfig cfg;
  cfg.clone_factors = {1, 3};
  cfg.interference_levels = {0, 3};
  cfg.replications = 2;
  auto run_json = [&](std::size_t threads) {
    CloningFrontierConfig c = cfg;
    c.campaign.threads = threads;
    obs::RunReport report("cloning_frontier_test");
    run_cloning_frontier(c).write_into(report);
    return report.to_json().dump_string();
  };
  const std::string serial = run_json(1);
  const std::string pooled = run_json(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

TEST(CloningFrontier, ReportRowsCoverEveryCell) {
  CloningFrontierConfig cfg;
  cfg.clone_factors = {1, 2};
  cfg.interference_levels = {0};
  cfg.disciplines = {sim::ServiceDiscipline::kProcessorSharing};
  cfg.replications = 2;
  cfg.duration_s = 5.0;
  cfg.campaign.threads = 1;
  const CloningFrontierResult result = run_cloning_frontier(cfg);
  obs::RunReport report("cloning_frontier_test");
  result.write_into(report);
  // 2 cells x 7 metrics x (mean + ci95) result rows.
  EXPECT_EQ(report.result_count(), 2u * 7u * 2u);
  const obs::Json doc = report.to_json();
  const obs::Json* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].prefix, "clone1.bg0.ps.");
  EXPECT_EQ(result.cells[1].prefix, "clone2.bg0.ps.");
}

}  // namespace
}  // namespace gsight::sched
