#include "sched/rescheduler.hpp"

#include <gtest/gtest.h>

namespace gsight::sched {
namespace {

prof::AppProfile make_profile(const std::string& name, std::size_t fns,
                              double cores) {
  prof::AppProfile p;
  p.app_name = name;
  p.cls = wl::WorkloadClass::kLatencySensitive;
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    fp.app_name = name;
    fp.fn_name = name + std::to_string(i);
    fp.demand.cores = cores;
    fp.mem_alloc_gb = 0.5;
    fp.solo_ipc = 1.5;
    p.functions.push_back(fp);
  }
  return p;
}

struct StubPredictor final : core::ScenarioPredictor {
  double value = 2.0;
  mutable std::size_t calls = 0;
  double predict(const core::Scenario&) const override {
    ++calls;
    return value;
  }
  void observe(const core::Scenario&, double) override {}
  void flush() override {}
  std::string name() const override { return "stub"; }
};

DeploymentState two_server_state(const prof::AppProfile* a,
                                 const prof::AppProfile* b) {
  DeploymentState state;
  state.servers = 3;
  state.load.resize(3);
  for (auto& l : state.load) {
    l.cores_capacity = 10.0;
    l.mem_capacity = 64.0;
  }
  // a's two functions on server 0, b's single function alone on server 1.
  state.workloads.push_back({"a", a, {0, 0}, a->cls, core::Sla{0.1, 1.0}});
  state.workloads.push_back({"b", b, {1}, b->cls, core::Sla{0.1, 1.0}});
  state.load[0].cores_committed = 2.0;
  state.load[0].instances = 2;
  state.load[1].cores_committed = 1.0;
  state.load[1].instances = 1;
  return state;
}

TEST(Rescheduler, ConsolidatesWhenPredictorApproves) {
  StubPredictor stub;
  stub.value = 10.0;  // everything passes
  Rescheduler rescheduler(&stub);
  auto a = make_profile("a", 2, 1.0);
  auto b = make_profile("b", 1, 1.0);
  const auto state = two_server_state(&a, &b);
  const auto moves = rescheduler.propose(state);
  ASSERT_FALSE(moves.empty());
  // b's lone function (server 1 is the emptier active server) moves onto
  // server 0, vacating server 1.
  EXPECT_EQ(moves[0].workload, 1u);
  EXPECT_EQ(moves[0].from, 1u);
  EXPECT_EQ(moves[0].to, 0u);
  EXPECT_GT(stub.calls, 0u);
}

TEST(Rescheduler, RefusesWhenFloorsWouldBreak) {
  StubPredictor stub;
  stub.value = 0.1;  // below every floor
  Rescheduler rescheduler(&stub);
  auto a = make_profile("a", 2, 1.0);
  auto b = make_profile("b", 1, 1.0);
  const auto state = two_server_state(&a, &b);
  EXPECT_TRUE(rescheduler.propose(state).empty());
}

TEST(Rescheduler, NoMovesWithSingleActiveServer) {
  StubPredictor stub;
  Rescheduler rescheduler(&stub);
  auto a = make_profile("a", 2, 1.0);
  DeploymentState state;
  state.servers = 2;
  state.load.resize(2);
  for (auto& l : state.load) {
    l.cores_capacity = 10.0;
    l.mem_capacity = 64.0;
  }
  state.workloads.push_back({"a", &a, {0, 0}, a.cls, core::Sla{0.1, 1.0}});
  state.load[0].cores_committed = 2.0;
  state.load[0].instances = 2;
  EXPECT_TRUE(rescheduler.propose(state).empty());
}

TEST(Rescheduler, RespectsMaxMoves) {
  StubPredictor stub;
  stub.value = 10.0;
  ReschedulerConfig cfg;
  cfg.max_moves = 1;
  Rescheduler rescheduler(&stub, cfg);
  auto a = make_profile("a", 2, 1.0);
  auto b = make_profile("b", 2, 1.0);
  DeploymentState state;
  state.servers = 4;
  state.load.resize(4);
  for (auto& l : state.load) {
    l.cores_capacity = 10.0;
    l.mem_capacity = 64.0;
  }
  state.workloads.push_back({"a", &a, {0, 1}, a.cls, core::Sla{0.1, 1.0}});
  state.workloads.push_back({"b", &b, {2, 3}, b.cls, core::Sla{0.1, 1.0}});
  for (std::size_t s = 0; s < 4; ++s) {
    state.load[s].cores_committed = 1.0;
    state.load[s].instances = 1;
  }
  EXPECT_LE(rescheduler.propose(state).size(), 1u);
}

TEST(Rescheduler, RespectsCapacity) {
  StubPredictor stub;
  stub.value = 10.0;
  Rescheduler rescheduler(&stub);
  auto a = make_profile("a", 1, 9.0);  // nearly fills a server
  auto b = make_profile("b", 1, 9.0);
  DeploymentState state;
  state.servers = 2;
  state.load.resize(2);
  for (auto& l : state.load) {
    l.cores_capacity = 10.0;
    l.mem_capacity = 64.0;
  }
  state.workloads.push_back({"a", &a, {0}, a.cls, core::Sla{0.1, 1.0}});
  state.workloads.push_back({"b", &b, {1}, b.cls, core::Sla{0.1, 1.0}});
  state.load[0].cores_committed = 9.0;
  state.load[0].instances = 1;
  state.load[1].cores_committed = 9.0;
  state.load[1].instances = 1;
  // Neither 9-core function fits beside the other: no proposals.
  EXPECT_TRUE(rescheduler.propose(state).empty());
}

}  // namespace
}  // namespace gsight::sched
