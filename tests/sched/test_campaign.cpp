// sched::Campaign — multi-replication experiment driver. The merged
// report must be bit-identical whatever the thread count, and the
// summaries must actually be the statistics of the per-replication runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "sched/campaign.hpp"
#include "sched/worstfit.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::sched {
namespace {

struct CampaignFixture : ::testing::Test {
  prof::ProfileStore store;
  CampaignConfig cfg;

  void SetUp() override {
    cfg.experiment.servers = 4;
    cfg.experiment.server = sim::ServerConfig::socket();
    cfg.experiment.duration_s = 60.0;
    cfg.experiment.sample_period_s = 3.0;
    cfg.experiment.sla_window_s = 15.0;
    cfg.experiment.sc_job_period_s = 30.0;
    cfg.experiment.sc_scale = 0.05;
    cfg.experiment.trace.base_qps = 50.0;
    cfg.experiment.trace.day_seconds = 60.0;
    cfg.experiment.autoscaler.tick_s = 5.0;
    cfg.experiment.autoscaler.max_replicas = 6;
    cfg.replications = 3;

    prof::SoloProfilerConfig pcfg;
    pcfg.ls_profile_s = 15.0;
    pcfg.server = cfg.experiment.server;
    prof::SoloProfiler profiler(pcfg);
    store.put(profiler.profile(prof::ProfileRequest{wl::social_network()}));
    store.put(profiler.profile(prof::ProfileRequest{wl::e_commerce()}));
    store.put(profiler.profile(
        prof::ProfileRequest{wl::matmul(3.0 * cfg.experiment.sc_scale)}));
    store.put(profiler.profile(
        prof::ProfileRequest{wl::dd(3.0 * cfg.experiment.sc_scale)}));
    store.put(profiler.profile(prof::ProfileRequest{
        wl::video_processing(4.0 * cfg.experiment.sc_scale)}));
    store.put(profiler.profile(prof::ProfileRequest{wl::iot_collector()}));
  }

  static ReplicateFactory worstfit_factory() {
    return [](std::size_t, std::uint64_t) {
      Replicate r;
      r.scheduler = std::make_unique<WorstFitScheduler>();
      return r;
    };
  }

  CampaignResult run_with_threads(std::size_t threads) const {
    CampaignConfig c = cfg;
    c.campaign.threads = threads;
    Campaign campaign(&store, c);
    return campaign.run(worstfit_factory());
  }

  static std::string merged_json(const CampaignResult& result) {
    obs::RunReport report("campaign_test");
    result.write_into(report, result.scheduler + ".");
    return report.to_json().dump_string();
  }
};

TEST_F(CampaignFixture, CampaignRunsAndSummarises) {
  const CampaignResult result = run_with_threads(1);
  EXPECT_EQ(result.scheduler, "WorstFit");
  EXPECT_EQ(result.replications, 3u);
  ASSERT_EQ(result.reports.size(), 3u);
  for (const auto& report : result.reports) {
    EXPECT_EQ(report.scheduler, "WorstFit");
    EXPECT_GT(report.requests_completed, 50u);
  }

  const MetricSummary* density = result.find("mean_density");
  ASSERT_NE(density, nullptr);
  EXPECT_GT(density->mean, 0.0);
  EXPECT_GE(density->ci95, 0.0);
  ASSERT_EQ(density->values.size(), 3u);
  double sum = 0.0;
  for (double v : density->values) sum += v;
  EXPECT_NEAR(density->mean, sum / 3.0, 1e-12);
  EXPECT_NEAR(density->ci95, 1.96 * density->stddev / std::sqrt(3.0), 1e-12);

  // Per-app SLA metrics exist for both LS apps.
  EXPECT_NE(result.find("sla_satisfied.social-network"), nullptr);
  EXPECT_NE(result.find("sla_satisfied.e-commerce"), nullptr);
  EXPECT_EQ(result.find("no_such_metric"), nullptr);
}

TEST_F(CampaignFixture, ReplicationsUseDistinctSeeds) {
  // Different derived seeds must produce genuinely different replications
  // (if all reps shared one seed, every CI would collapse to zero).
  const CampaignResult result = run_with_threads(1);
  const MetricSummary* completed = result.find("requests_completed");
  ASSERT_NE(completed, nullptr);
  bool any_differ = false;
  for (std::size_t i = 1; i < completed->values.size(); ++i) {
    if (completed->values[i] != completed->values[0]) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST_F(CampaignFixture, MergedReportIsThreadCountInvariant) {
  // The ISSUE's twin-run contract: threads=1 vs threads=8 byte-identical
  // merged-report JSON.
  const std::string serial = merged_json(run_with_threads(1));
  const std::string parallel = merged_json(run_with_threads(8));
  EXPECT_EQ(serial, parallel);
}

TEST_F(CampaignFixture, SingleReplicationHasZeroSpread) {
  CampaignConfig c = cfg;
  c.replications = 1;
  Campaign campaign(&store, c);
  const CampaignResult result = campaign.run(worstfit_factory());
  ASSERT_EQ(result.reports.size(), 1u);
  const MetricSummary* density = result.find("mean_density");
  ASSERT_NE(density, nullptr);
  EXPECT_EQ(density->stddev, 0.0);
  EXPECT_EQ(density->ci95, 0.0);
  EXPECT_EQ(density->mean, density->values[0]);
}

TEST_F(CampaignFixture, WriteIntoEmitsRowsAndSeries) {
  const CampaignResult result = run_with_threads(1);
  obs::RunReport report("campaign_test");
  result.write_into(report, "WorstFit.");
  EXPECT_GT(report.result_count(), 0u);
  const std::string doc = report.to_json().dump_string();
  EXPECT_NE(doc.find("WorstFit.mean_density.mean"), std::string::npos);
  EXPECT_NE(doc.find("WorstFit.mean_density.ci95"), std::string::npos);
  EXPECT_NE(doc.find("WorstFit.replications"), std::string::npos);
}

}  // namespace
}  // namespace gsight::sched
