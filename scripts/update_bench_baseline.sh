#!/usr/bin/env bash
# Regenerate bench/BENCH_micro_baseline.json — the committed floor for the
# check.sh stage-5c forest-inference perf guard. Run this (and commit the
# result) only when a deliberate kernel change moves the number; the guard
# exists so accidental regressions cannot ride in silently.
#
# Usage: scripts/update_bench_baseline.sh [BUILD_DIR]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 4)" --target bench_micro
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
GSIGHT_THREADS=1 GSIGHT_BENCH_DIR="$TMP" "$BUILD/bench/bench_micro" \
  --benchmark_min_time=0.05 \
  --benchmark_filter='BM_ForestPredictBatched$'
cp "$TMP/BENCH_micro.json" "$ROOT/bench/BENCH_micro_baseline.json"
echo "baseline written to bench/BENCH_micro_baseline.json"
