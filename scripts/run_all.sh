#!/bin/sh
# Regenerate every reproduced table/figure and the test report.
#   scripts/run_all.sh [build-dir]
set -e
BUILD=${1:-build}
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
: > bench_output.txt
for b in "$BUILD"/bench/*; do
  { [ -f "$b" ] && [ -x "$b" ]; } || continue
  echo "================================================================"
  echo "== $b"
  echo "================================================================"
  "$b"
done 2>&1 | tee -a bench_output.txt
