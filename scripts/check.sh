#!/usr/bin/env bash
# check.sh — the repo's full correctness gate. Runs, in order:
#   1. gsight_lint (determinism/hygiene linter) + its self-test
#   2. clang-tidy over src/ with -warnings-as-errors='*' (skipped with a
#      notice when not installed)
#   2b. gsight_analyze: seeded-violation self-tests for every pass, then
#      the full-tree run (layering, determinism, lock-discipline,
#      hot-alloc) which must come back clean
#   2c. clang -Wthread-safety build (-DGSIGHT_THREAD_SAFETY=ON with
#      -Werror=thread-safety; skipped with a notice when clang++ is not
#      installed)
#   3. ASan+UBSan build + the entire ctest suite
#   4. TSan build + the thread-pool / forest / trainer / campaign / serve
#      / shard tests (the multi-threaded code paths)
#   5. bench smoke: run bench_micro with RunReport enabled and validate
#      the emitted BENCH_micro.json with tools/bench_schema_check
#   5b. model kernels: legacy-vs-columnar forest train and predict
#      benchmarks, the SIMD-blocked traversal variants
#      (BM_ForestPredictSimd*), and the serving-layer inference kernels
#      under GSIGHT_THREADS=1, schema-checked like any bench; prints the
#      batched-vs-legacy inference speedup from the RunReport
#   5c. forest-inference perf guard: fresh BM_ForestPredictBatched vs the
#      committed bench/BENCH_micro_baseline.json — fails when the fresh
#      time is > 1.25x the committed baseline (skips with a notice when
#      the baseline file is absent)
#   6. campaign-equivalence: `gsight campaign` serial vs parallel sample
#      dumps must be byte-identical (the determinism contract of
#      core::CampaignRunner, DESIGN.md §9)
#   6b. shard-equivalence: `gsight campaign --shards N` 1-lane serial vs
#      8-lane thread-pooled estate dumps must be byte-identical (the
#      determinism contract of sim::ShardedEngine, DESIGN.md §13)
#   6c. cloning twin-run: the same estate with request cloning, cross-cell
#      clone pairs and processor-sharing servers — cancel-on-first-complete
#      events cross shard mailboxes and must still replay byte-identically
#      for any lane/thread count (DESIGN.md §16)
#   7. serve smoke: short `gsight serve-bench` runs. The synchronous twin
#      (--threads 0) must emit byte-identical BENCH_serve.json across two
#      runs (modulo wall_time_s) with at least one hot swap; the threaded
#      run must schema-check and hot-swap under load too
#   7b. fleet twin-run: `gsight serve-bench --fleet 4` with a mid-run
#      drain + re-add and the live NDJSON stream on, run twice. The
#      BENCH_serve_fleet.json reports must match modulo wall_time_s, the
#      live streams must be byte-identical, the stream must satisfy the
#      gsight-live/v1 schema, and no request may be lost across the
#      re-shard. A deterministic admission-bound capacity run then checks
#      the 4-replica fleet serves >= 3x the single-service throughput
#
# Each stage gets its own build tree under build-check/ so the developer's
# main build/ directory is never clobbered. Warnings are errors everywhere.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer stages (static analysis stages 1-2c only)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

banner() { printf '\n=== %s ===\n' "$*"; }

configure_build() {
  # configure_build <dir> <extra cmake args...>
  local dir="$1"; shift
  cmake -B "$dir" -S "$ROOT" -DGSIGHT_WERROR=ON \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" > "$dir.configure.log" 2>&1 \
    || { cat "$dir.configure.log"; return 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir.build.log" 2>&1 \
    || { tail -n 60 "$dir.build.log"; return 1; }
}

# --- 1. Lint ---------------------------------------------------------------
banner "gsight_lint"
LINT_DIR="$ROOT/build-check/lint"
mkdir -p "$ROOT/build-check"
cmake -B "$LINT_DIR" -S "$ROOT" -DGSIGHT_WERROR=ON \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > "$LINT_DIR.configure.log" 2>&1
cmake --build "$LINT_DIR" -j "$JOBS" --target gsight_lint gsight_analyze \
      > "$LINT_DIR.build.log" 2>&1 || { tail -n 40 "$LINT_DIR.build.log"; exit 1; }
"$LINT_DIR/tools/gsight_lint" --self-test
"$LINT_DIR/tools/gsight_lint" "$ROOT"

# --- 2. clang-tidy ---------------------------------------------------------
banner "clang-tidy"
if command -v clang-tidy > /dev/null 2>&1; then
  mapfile -t TIDY_SOURCES < <(find "$ROOT/src" -name '*.cpp' | sort)
  # Gate, not advice: any finding from the .clang-tidy profile fails the
  # run (the profile itself documents which checks are excluded and why).
  clang-tidy -p "$LINT_DIR/compile_commands.json" --quiet \
    -warnings-as-errors='*' "${TIDY_SOURCES[@]}"
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

# --- 2b. gsight_analyze ----------------------------------------------------
banner "gsight_analyze: pass self-tests + full-tree run"
"$LINT_DIR/tools/gsight_analyze" --self-test
"$LINT_DIR/tools/gsight_analyze" --dump-graph "$LINT_DIR/include-graph.json" "$ROOT"
echo "include graph dumped to $LINT_DIR/include-graph.json"

# --- 2c. clang thread-safety -----------------------------------------------
# The GSIGHT_GUARDED_BY / GSIGHT_REQUIRES annotations are only *analysed*
# by clang; this stage compiles the tree with -Wthread-safety promoted to
# an error. Only thread-safety diagnostics are fatal here — unrelated
# clang warnings must not break a gate that GCC-only developers cannot
# reproduce locally.
banner "clang -Wthread-safety build"
if command -v clang++ > /dev/null 2>&1; then
  TSAFE_DIR="$ROOT/build-check/thread-safety"
  cmake -B "$TSAFE_DIR" -S "$ROOT" -DCMAKE_CXX_COMPILER=clang++ \
        -DGSIGHT_THREAD_SAFETY=ON \
        -DCMAKE_CXX_FLAGS="-Werror=thread-safety" \
        > "$TSAFE_DIR.configure.log" 2>&1 \
    || { cat "$TSAFE_DIR.configure.log"; exit 1; }
  cmake --build "$TSAFE_DIR" -j "$JOBS" > "$TSAFE_DIR.build.log" 2>&1 \
    || { tail -n 60 "$TSAFE_DIR.build.log"; exit 1; }
  echo "clang thread-safety build clean"
else
  echo "clang++ not installed; skipping (the gsight_analyze lock-discipline"
  echo "pass above still enforces annotation coverage)"
fi

if [[ "$FAST" == "1" ]]; then
  banner "--fast: skipping sanitizer stages"
  exit 0
fi

# --- 3. ASan + UBSan -------------------------------------------------------
banner "ASan+UBSan build + full ctest"
ASAN_DIR="$ROOT/build-check/asan"
configure_build "$ASAN_DIR" "-DGSIGHT_SANITIZE=address;undefined"
# halt_on_error so UBSan findings fail the run instead of just printing.
( cd "$ASAN_DIR" && \
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure -j "$JOBS" )

# --- 4. TSan ---------------------------------------------------------------
banner "TSan build + threaded tests"
TSAN_DIR="$ROOT/build-check/tsan"
configure_build "$TSAN_DIR" "-DGSIGHT_SANITIZE=thread"
# The multi-threaded surface: ThreadPool itself plus its users (forest
# training/inference, incremental models, trainer, campaigns) and the
# online serving stack (workers, background trainer, snapshot hot swap,
# fleet routing/drain).
( cd "$TSAN_DIR" && \
  TSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure -j "$JOBS" \
        -R 'ThreadPool|Forest|Incremental|Trainer|Campaign|Serve|Fleet|Shard|Clon|ProcessorSharing' )

# --- 5. Bench smoke --------------------------------------------------------
banner "bench smoke: bench_micro -> BENCH_micro.json -> bench_schema_check"
BENCH_DIR="$ROOT/build-check/bench"
cmake -B "$BENCH_DIR" -S "$ROOT" -DGSIGHT_WERROR=ON \
      > "$BENCH_DIR.configure.log" 2>&1 \
  || { cat "$BENCH_DIR.configure.log"; exit 1; }
cmake --build "$BENCH_DIR" -j "$JOBS" --target bench_micro bench_schema_check \
      > "$BENCH_DIR.build.log" 2>&1 || { tail -n 40 "$BENCH_DIR.build.log"; exit 1; }
SMOKE_DIR="$BENCH_DIR/smoke"
rm -rf "$SMOKE_DIR" && mkdir -p "$SMOKE_DIR"
# NOTE: the installed google-benchmark wants a plain double for
# --benchmark_min_time (no "0.01s" suffix form).
GSIGHT_BENCH_DIR="$SMOKE_DIR" "$BENCH_DIR/bench/bench_micro" \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_EventQueueThroughput|BM_EncoderEncode'
[[ -f "$SMOKE_DIR/BENCH_micro.json" ]] \
  || { echo "bench smoke: BENCH_micro.json was not written"; exit 1; }
"$BENCH_DIR/tools/bench_schema_check" "$SMOKE_DIR/BENCH_micro.json"

# --- 5b. Model-kernel bench ------------------------------------------------
# The legacy-vs-columnar forest kernels and the flattened predict paths,
# pinned to one thread so the numbers measure the kernels, not the pool.
# Their RunReport must satisfy the same schema as every other bench.
banner "model kernels: legacy vs columnar forest train/predict"
KERNEL_DIR="$BENCH_DIR/model-kernels"
rm -rf "$KERNEL_DIR" && mkdir -p "$KERNEL_DIR"
GSIGHT_THREADS=1 GSIGHT_BENCH_DIR="$KERNEL_DIR" "$BENCH_DIR/bench/bench_micro" \
  --benchmark_min_time=0.01 \
  --benchmark_filter='BM_ForestTrain|BM_ForestPredict(Legacy|Singles|Batched)|BM_ForestPredictSimd(Scalar|Blocked|Gather)|BM_ServePredict|BM_ServeFleetRouted'
[[ -f "$KERNEL_DIR/BENCH_micro.json" ]] \
  || { echo "model kernels: BENCH_micro.json was not written"; exit 1; }
"$BENCH_DIR/tools/bench_schema_check" "$KERNEL_DIR/BENCH_micro.json"
# RunReport delta: the blocked batched path against the legacy walker.
# Informational (the hard floor is stage 5c's committed baseline), but a
# missing entry means the bench filter above silently rotted — fail that.
report_value() {
  grep -A1 "\"name\": \"$2\"" "$1" | grep '"value"' \
    | grep -o '[0-9][0-9.eE+-]*' | head -n 1
}
legacy_us=$(report_value "$KERNEL_DIR/BENCH_micro.json" BM_ForestPredictLegacy)
batched_us=$(report_value "$KERNEL_DIR/BENCH_micro.json" BM_ForestPredictBatched)
[[ -n "$legacy_us" && -n "$batched_us" ]] \
  || { echo "model kernels: legacy/batched entries missing from RunReport"; exit 1; }
awk -v l="$legacy_us" -v b="$batched_us" \
  'BEGIN { printf "forest inference: legacy %.1f us -> batched %.1f us (%.2fx)\n", l, b, l / b }'

# --- 5c. Forest-inference perf guard ----------------------------------------
# The batched forest traversal is the scheduler's per-placement cost; a
# regression here silently stretches every SLA sweep. The committed
# baseline (bench/BENCH_micro_baseline.json, regenerated with
# scripts/update_bench_baseline.sh when a deliberate change moves the
# number) is a hard floor: fresh time > 1.25x baseline fails the gate.
# The 25% headroom absorbs machine-to-machine noise, not regressions.
banner "forest-inference perf guard: fresh vs committed baseline"
BASELINE="$ROOT/bench/BENCH_micro_baseline.json"
if [[ -f "$BASELINE" ]]; then
  GUARD_DIR="$BENCH_DIR/perf-guard"
  rm -rf "$GUARD_DIR" && mkdir -p "$GUARD_DIR"
  GSIGHT_THREADS=1 GSIGHT_BENCH_DIR="$GUARD_DIR" "$BENCH_DIR/bench/bench_micro" \
    --benchmark_min_time=0.05 \
    --benchmark_filter='BM_ForestPredictBatched$' > /dev/null
  fresh_us=$(report_value "$GUARD_DIR/BENCH_micro.json" BM_ForestPredictBatched)
  base_us=$(report_value "$BASELINE" BM_ForestPredictBatched)
  [[ -n "$fresh_us" && -n "$base_us" ]] \
    || { echo "perf guard: BM_ForestPredictBatched missing from report or baseline"; exit 1; }
  awk -v f="$fresh_us" -v b="$base_us" 'BEGIN {
    ratio = f / b
    printf "BM_ForestPredictBatched: fresh %.1f us vs baseline %.1f us (%.2fx)\n", f, b, ratio
    exit (ratio <= 1.25 ? 0 : 1)
  }' || { echo "perf guard: batched forest inference regressed > 1.25x"; exit 1; }
else
  echo "bench/BENCH_micro_baseline.json not committed; skipping perf guard"
fi

# --- 6. Campaign equivalence -----------------------------------------------
banner "campaign-equivalence: serial vs parallel sample streams"
cmake --build "$BENCH_DIR" -j "$JOBS" --target gsight_cli \
      > "$BENCH_DIR.cli.log" 2>&1 || { tail -n 40 "$BENCH_DIR.cli.log"; exit 1; }
EQ_DIR="$BENCH_DIR/campaign-eq"
rm -rf "$EQ_DIR" && mkdir -p "$EQ_DIR"
# Same seed, same scenario count; only the thread count differs. The dumps
# are hexfloat-exact, so cmp catches any bit-level divergence.
"$BENCH_DIR/tools/gsight" campaign --threads 1 --seed 4242 --count 8 \
  --dump "$EQ_DIR/serial.dump" > /dev/null
"$BENCH_DIR/tools/gsight" campaign --threads 8 --seed 4242 --count 8 \
  --dump "$EQ_DIR/parallel.dump" > /dev/null
cmp "$EQ_DIR/serial.dump" "$EQ_DIR/parallel.dump" \
  || { echo "campaign-equivalence: serial/parallel dumps differ"; exit 1; }
echo "serial and parallel campaign dumps are byte-identical"

# --- 6b. Shard equivalence ---------------------------------------------------
banner "shard-equivalence: 1-lane serial vs 8-lane thread-pooled estate"
SHARD_DIR="$BENCH_DIR/shard-eq"
rm -rf "$SHARD_DIR" && mkdir -p "$SHARD_DIR"
# Same 8-cell estate advanced two ways: one lane serially, eight lanes on
# the thread pool. The merged per-cell digests are hexfloat-exact, so cmp
# catches any divergence in event order, RNG streams or mailbox replay.
"$BENCH_DIR/tools/gsight" campaign --shards 1 --threads 1 --seed 4242 \
  --clusters 8 --servers 4 --horizon 60 \
  --dump "$SHARD_DIR/lanes1.dump" > /dev/null
"$BENCH_DIR/tools/gsight" campaign --shards 8 --threads 8 --seed 4242 \
  --clusters 8 --servers 4 --horizon 60 \
  --dump "$SHARD_DIR/lanes8.dump" > /dev/null
cmp "$SHARD_DIR/lanes1.dump" "$SHARD_DIR/lanes8.dump" \
  || { echo "shard-equivalence: 1-lane and 8-lane dumps differ"; exit 1; }
echo "1-lane and 8-lane shard dumps are byte-identical"

# --- 6c. Cloning twin-run ----------------------------------------------------
banner "cloning twin-run: cross-cell clones + PS servers, 1 lane vs 8 lanes"
CLONE_EQ_DIR="$BENCH_DIR/clone-eq"
rm -rf "$CLONE_EQ_DIR" && mkdir -p "$CLONE_EQ_DIR"
# The same estate, but every request fans into two clones, a share of the
# clone pairs crosses cell boundaries, and the servers run processor
# sharing. Cancel-on-first-complete now travels through shard mailboxes, so
# this gate proves retraction events replay byte-identically no matter how
# the lanes are scheduled.
CLONE_ARGS=(--seed 4242 --clusters 8 --servers 4 --horizon 60
            --clone-factor 2 --clone-handoffs --remote 0.3 --ps)
"$BENCH_DIR/tools/gsight" campaign --shards 1 --threads 1 "${CLONE_ARGS[@]}" \
  --dump "$CLONE_EQ_DIR/lanes1.dump" > /dev/null
"$BENCH_DIR/tools/gsight" campaign --shards 8 --threads 8 "${CLONE_ARGS[@]}" \
  --dump "$CLONE_EQ_DIR/lanes8.dump" > /dev/null
cmp "$CLONE_EQ_DIR/lanes1.dump" "$CLONE_EQ_DIR/lanes8.dump" \
  || { echo "cloning twin-run: 1-lane and 8-lane dumps differ"; exit 1; }
echo "cloning twin-run dumps are byte-identical with cross-cell cancels"

# --- 7. Serve smoke ---------------------------------------------------------
banner "serve smoke: serve-bench determinism twin + threaded hot-swap"
SERVE_DIR="$BENCH_DIR/serve-smoke"
rm -rf "$SERVE_DIR" && mkdir -p "$SERVE_DIR/twin1" "$SERVE_DIR/twin2" "$SERVE_DIR/threaded"
SERVE_ARGS=(--requests 3000 --dim 64 --warm 128 --rate 200000 --seed 99)
# Synchronous twin: two identical runs on the virtual clock must produce
# byte-identical reports except for the harness-measured wall_time_s.
"$BENCH_DIR/tools/gsight" serve-bench --threads 0 "${SERVE_ARGS[@]}" \
  --out "$SERVE_DIR/twin1" > /dev/null
"$BENCH_DIR/tools/gsight" serve-bench --threads 0 "${SERVE_ARGS[@]}" \
  --out "$SERVE_DIR/twin2" > /dev/null
grep -v '"wall_time_s"' "$SERVE_DIR/twin1/BENCH_serve.json" > "$SERVE_DIR/twin1.stripped"
grep -v '"wall_time_s"' "$SERVE_DIR/twin2/BENCH_serve.json" > "$SERVE_DIR/twin2.stripped"
cmp "$SERVE_DIR/twin1.stripped" "$SERVE_DIR/twin2.stripped" \
  || { echo "serve smoke: twin serve-bench reports differ"; exit 1; }
echo "synchronous serve-bench twins are byte-identical (modulo wall_time_s)"
# Threaded run: schema-valid report and at least one hot swap under load.
"$BENCH_DIR/tools/gsight" serve-bench --threads 2 "${SERVE_ARGS[@]}" \
  --rate 50000 --out "$SERVE_DIR/threaded" > /dev/null
for report in "$SERVE_DIR/twin1/BENCH_serve.json" "$SERVE_DIR/threaded/BENCH_serve.json"; do
  "$BENCH_DIR/tools/bench_schema_check" "$report"
  grep -q '"name": "hot_swaps_under_load"' "$report" \
    || { echo "serve smoke: $report lacks hot_swaps_under_load"; exit 1; }
  swaps=$(grep -A1 '"name": "hot_swaps_under_load"' "$report" \
          | grep '"value"' | grep -o '[0-9.]\+')
  awk -v s="$swaps" 'BEGIN { exit (s >= 1 ? 0 : 1) }' \
    || { echo "serve smoke: $report reports no hot swap under load"; exit 1; }
done
echo "serve-bench hot-swapped under load in both regimes"

# --- 7b. Fleet twin-run ------------------------------------------------------
banner "fleet twin-run: drain/re-shard determinism + live stream + capacity"
FLEET_DIR="$BENCH_DIR/fleet-smoke"
rm -rf "$FLEET_DIR"
mkdir -p "$FLEET_DIR/twin1" "$FLEET_DIR/twin2" "$FLEET_DIR/single" "$FLEET_DIR/cap4"

# Pulls "value" off the line after a '"name": "<metric>"' line, the
# RunReport results layout (same idiom as the hot-swap check above).
bench_value() {
  grep -A1 "\"name\": \"$2\"" "$1" | grep '"value"' \
    | grep -o '[0-9][0-9.eE+-]*' | head -n 1
}

FLEET_ARGS=(--threads 0 --fleet 4 --requests 3000 --dim 64 --warm 128
            --rate 200000 --seed 99 --drain 1@1000:2000)
# Twin runs on the shared virtual clock, with a drain + re-add landing
# mid-run and the live NDJSON stream on. Everything must reproduce: the
# report modulo wall_time_s, and the live stream byte-for-byte.
"$BENCH_DIR/tools/gsight" serve-bench "${FLEET_ARGS[@]}" \
  --live "$FLEET_DIR/twin1/live.ndjson" --out "$FLEET_DIR/twin1" > /dev/null
"$BENCH_DIR/tools/gsight" serve-bench "${FLEET_ARGS[@]}" \
  --live "$FLEET_DIR/twin2/live.ndjson" --out "$FLEET_DIR/twin2" > /dev/null
grep -v '"wall_time_s"' "$FLEET_DIR/twin1/BENCH_serve_fleet.json" > "$FLEET_DIR/twin1.stripped"
grep -v '"wall_time_s"' "$FLEET_DIR/twin2/BENCH_serve_fleet.json" > "$FLEET_DIR/twin2.stripped"
cmp "$FLEET_DIR/twin1.stripped" "$FLEET_DIR/twin2.stripped" \
  || { echo "fleet twin-run: BENCH_serve_fleet.json reports differ"; exit 1; }
cmp "$FLEET_DIR/twin1/live.ndjson" "$FLEET_DIR/twin2/live.ndjson" \
  || { echo "fleet twin-run: live NDJSON streams differ"; exit 1; }
echo "fleet twins are byte-identical (report modulo wall_time_s; stream exact)"
"$BENCH_DIR/tools/bench_schema_check" "$FLEET_DIR/twin1/BENCH_serve_fleet.json"
"$BENCH_DIR/tools/bench_schema_check" --live "$FLEET_DIR/twin1/live.ndjson"
"$BENCH_DIR/tools/gsight" tail "$FLEET_DIR/twin1/live.ndjson" > /dev/null \
  || { echo "fleet twin-run: gsight tail failed on the live stream"; exit 1; }
# Conservation across the re-shard: nothing lost, and the drain + re-add
# actually happened.
lost=$(bench_value "$FLEET_DIR/twin1/BENCH_serve_fleet.json" lost)
drains=$(bench_value "$FLEET_DIR/twin1/BENCH_serve_fleet.json" drains)
readds=$(bench_value "$FLEET_DIR/twin1/BENCH_serve_fleet.json" readds)
awk -v l="$lost" -v d="$drains" -v r="$readds" \
  'BEGIN { exit (l == 0 && d >= 1 && r >= 1 ? 0 : 1) }' \
  || { echo "fleet twin-run: lost=$lost drains=$drains readds=$readds"; exit 1; }
echo "drain/re-shard conserved every request (lost=0, drains=$drains, readds=$readds)"

# Capacity: with queue_capacity < max_batch the synchronous driver can
# only serve on linger deadlines, so per-replica capacity is genuinely
# admission-bound and adding replicas multiplies it. Deterministic, so
# the >= 3x bar cannot flake.
CAP_ARGS=(--threads 0 --requests 20000 --dim 64 --warm 128 --rate 2500000
          --queue 8 --batch 32 --seed 7)
"$BENCH_DIR/tools/gsight" serve-bench "${CAP_ARGS[@]}" \
  --out "$FLEET_DIR/single" > /dev/null
"$BENCH_DIR/tools/gsight" serve-bench "${CAP_ARGS[@]}" --fleet 4 \
  --out "$FLEET_DIR/cap4" > /dev/null
single_rps=$(bench_value "$FLEET_DIR/single/BENCH_serve.json" throughput)
fleet_rps=$(bench_value "$FLEET_DIR/cap4/BENCH_serve_fleet.json" throughput)
awk -v s="$single_rps" -v f="$fleet_rps" \
  'BEGIN { exit (s > 0 && f >= 3 * s ? 0 : 1) }' \
  || { echo "fleet capacity: $fleet_rps rps vs single $single_rps rps (< 3x)"; exit 1; }
echo "fleet-of-4 capacity: $fleet_rps rps vs single $single_rps rps (>= 3x)"

banner "all checks passed"
