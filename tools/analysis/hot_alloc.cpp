#include "analysis/hot_alloc.hpp"

#include <iostream>
#include <string>
#include <vector>

namespace gsight::analysis {

namespace {

const char kRule[] = "alloc-in-hot-path";
/// Short waiver spelling; the full rule name is accepted too.
const char kWaiver[] = "hot-alloc";
const char kMarker[] = "gsight-analyze: hot-path";

/// A file opts into the pass with a raw `// gsight-analyze: hot-path`
/// line (convention: line 1, above the first include).
bool is_hot(const LexedFile& file) {
  for (const auto& line : file.raw) {
    if (line.find(kMarker) != std::string::npos) return true;
  }
  return false;
}

bool line_waived(const LexedFile& file, std::size_t line) {
  return waived(file, line, kWaiver) || waived(file, line, kRule);
}

}  // namespace

void check_hot_alloc(const SourceSet& files, std::vector<Violation>* out) {
  for (const auto& [rel, file] : files) {
    if (!is_hot(file)) continue;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (t == "new") {
        // `operator new` declarations configure allocation rather than
        // perform it; everything else is a new-expression.
        if (i > 0 && toks[i - 1].text == "operator") continue;
        if (line_waived(file, toks[i].line)) continue;
        out->push_back({rel, toks[i].line, kRule,
                        "new-expression in a hot-path file; pool or reuse "
                        "the object, or waive with allow(hot-alloc)"});
      } else if (t == "make_shared") {
        if (line_waived(file, toks[i].line)) continue;
        out->push_back({rel, toks[i].line, kRule,
                        "make_shared in a hot-path file (malloc + atomic "
                        "refcount per call); pool the object or waive "
                        "with allow(hot-alloc)"});
      }
    }
  }
}

int hot_alloc_self_test() {
  struct Case {
    const char* name;
    std::vector<std::pair<const char*, const char*>> files;
    int expect_violations;
  };
  const std::vector<Case> cases = {
      {"new expression in a hot file",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "void f() { auto* p = new Foo(); use(p); }\n"}},
       1},
      {"make_shared in a hot file",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "void f() { auto p = std::make_shared<Foo>(); use(p); }\n"}},
       1},
      {"unqualified make_shared still counts",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "using std::make_shared;\n"
         "void f() { auto p = make_shared<Foo>(); use(p); }\n"}},
       2},  // the using-declaration names it too: both lines flag
      {"unmarked file is out of scope",
       {{"src/sim/a.cpp",
         "void f() { auto p = std::make_shared<Foo>(); use(new Foo()); }\n"}},
       0},
      {"make_unique is the allowed idiom",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "void f() { auto p = std::make_unique<Foo>(); use(p); }\n"}},
       0},
      {"waiver on the allocation line",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "void grow() {\n"
         "  owned_.emplace_back(new Ctx(this));  "
         "// gsight-analyze: allow(hot-alloc)\n"
         "}\n"}},
       0},
      {"full rule name also waives",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "void f() { auto p = std::make_shared<Foo>(); "
         "// gsight-analyze: allow(alloc-in-hot-path)\n"
         "}\n"}},
       0},
      {"new in comments and strings is invisible to the lexer",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "// a new context is checked out of the pool, never new'd\n"
         "const char* kMsg = \"new request\";\n"}},
       0},
      {"operator new declaration is configuration, not allocation",
       {{"src/sim/a.cpp",
         "// gsight-analyze: hot-path\n"
         "void* operator new(std::size_t n);\n"}},
       0},
      {"marker anywhere in the file arms the pass",
       {{"src/sim/a.cpp",
         "void f() { use(new Foo()); }\n"
         "// gsight-analyze: hot-path\n"}},
       1},
      {"clone fan-out loop stays allocation-free",
       {{"src/sim/request.cpp",
         "// gsight-analyze: hot-path\n"
         "void deliver_clone() {\n"
         "  const Server* exclude[kMaxCloneFactor] = {};\n"
         "  auto* leg = route_clone(exclude, n);\n"
         "  use(leg);\n"
         "}\n"}},
       0},
      {"per-clone heap state in the recompute loop flags",
       {{"src/sim/server.cpp",
         "// gsight-analyze: hot-path\n"
         "void recompute() {\n"
         "  for (auto& e : order) track(new CloneState(e));\n"
         "}\n"}},
       1},
  };
  int failures = 0;
  for (const auto& c : cases) {
    SourceSet set;
    for (const auto& [rel, text] : c.files) add_source(&set, rel, text);
    std::vector<Violation> vs;
    check_hot_alloc(set, &vs);
    if (static_cast<int>(vs.size()) != c.expect_violations) {
      ++failures;
      std::cout << "hot-alloc self-test FAIL: " << c.name << " (expected "
                << c.expect_violations << ", got " << vs.size() << ")\n";
      for (const auto& v : vs) {
        std::cout << "  " << v.file << ":" << v.line << ": " << v.message
                  << "\n";
      }
    }
  }
  std::cout << "hot-alloc self-test: " << (cases.size() - failures) << "/"
            << cases.size() << " cases pass\n";
  return failures;
}

}  // namespace gsight::analysis
