#include "analysis/determinism.hpp"

#include <algorithm>
#include <iostream>
#include <set>
#include <sstream>

namespace gsight::analysis {

namespace {

const std::set<std::string> kUnorderedTemplates = {"unordered_map",
                                                   "unordered_set"};

const std::set<std::string> kSinkCalls = {
    "push",    "push_back", "emplace", "emplace_back", "insert",
    "schedule", "enqueue",  "record",  "observe",      "write",
    "print",   "printf",    "log",     "emit",         "add_event",
};

struct UnorderedNames {
  std::set<std::string> types;  ///< unordered_map/set + aliases of them
  std::set<std::string> vars;   ///< variables/members of those types
};

/// Global collection: every `using Alias = …unordered_map<…>…` and every
/// declaration `unordered_map<…> name` / `Alias name` across all files.
UnorderedNames collect_unordered_names(const SourceSet& files) {
  UnorderedNames names;
  names.types = kUnorderedTemplates;
  // Two sweeps so an alias declared in a later file still resolves
  // variables declared in an earlier one.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const auto& [rel, file] : files) {
      (void)rel;
      const auto& toks = file.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdent ||
            names.types.count(toks[i].text) == 0) {
          continue;
        }
        // Skip the template-argument list if there is one.
        std::size_t after = i + 1;
        if (after < toks.size() && toks[after].text == "<") {
          const std::size_t close = match_angle(toks, after);
          if (close == toks.size()) continue;  // unmatched — not a decl
          after = close + 1;
        }
        // `using Alias = std::unordered_map<…>` — the alias name sits
        // before the `=`, two tokens behind the type (plus `std ::`).
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].text == "std") {
          if (i >= 4 && toks[i - 3].text == "=" &&
              toks[i - 4].kind == TokKind::kIdent) {
            names.types.insert(toks[i - 4].text);
          }
        } else if (i >= 2 && toks[i - 1].text == "=" &&
                   toks[i - 2].kind == TokKind::kIdent) {
          names.types.insert(toks[i - 2].text);
        }
        // Declarator: the identifier right after the type (skipping
        // refs/pointers) is a declared variable or member.
        while (after < toks.size() &&
               (toks[after].text == "&" || toks[after].text == "*" ||
                toks[after].text == "const")) {
          ++after;
        }
        if (after < toks.size() && toks[after].kind == TokKind::kIdent) {
          names.vars.insert(toks[after].text);
        }
      }
    }
  }
  return names;
}

bool has_sink(const std::vector<Token>& toks, std::size_t first,
              std::size_t last) {
  for (std::size_t i = first; i < last && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kPunct && toks[i].text == "<<") return true;
    if (toks[i].kind == TokKind::kIdent && kSinkCalls.count(toks[i].text) &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      return true;
    }
  }
  return false;
}

void check_file(const std::string& rel, const LexedFile& file,
                const UnorderedNames& names, std::vector<Violation>* out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "for") continue;
    if (toks[i + 1].text != "(") continue;
    const std::size_t close = match_delim(toks, i + 1);
    if (close == toks.size()) continue;
    // Range-for: a `:` punct inside the parens (`::` is its own token,
    // so scope resolution never fakes a match).
    std::size_t colon = toks.size();
    for (std::size_t k = i + 2; k < close; ++k) {
      if (toks[k].kind == TokKind::kPunct && toks[k].text == ":") {
        colon = k;
        break;
      }
    }
    if (colon == toks.size()) continue;
    // Does the range expression name an unordered container?
    bool unordered = false;
    std::string culprit;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (names.types.count(toks[k].text) != 0 ||
          names.vars.count(toks[k].text) != 0) {
        unordered = true;
        culprit = toks[k].text;
        break;
      }
    }
    if (!unordered) continue;
    // Loop body: a braced block, or a single statement up to `;`.
    std::size_t body_first = close + 1;
    std::size_t body_last;  // exclusive
    if (body_first < toks.size() && toks[body_first].text == "{") {
      body_last = match_delim(toks, body_first);
    } else {
      body_last = body_first;
      while (body_last < toks.size() && toks[body_last].text != ";") {
        ++body_last;
      }
    }
    if (!has_sink(toks, body_first, body_last)) continue;
    if (waived(file, toks[i].line, "unordered-iteration")) continue;
    std::ostringstream msg;
    msg << "range-for over unordered container '" << culprit
        << "' feeds an output sink; hash order is not deterministic "
           "across platforms (iterate a sorted copy or switch to std::map)";
    out->push_back({rel, toks[i].line, "unordered-iteration", msg.str()});
  }
}

}  // namespace

void check_determinism(const SourceSet& files, std::vector<Violation>* out) {
  const UnorderedNames names = collect_unordered_names(files);
  for (const auto& [rel, file] : files) check_file(rel, file, names, out);
}

int determinism_self_test() {
  struct Case {
    const char* name;
    std::vector<std::pair<const char*, const char*>> files;
    int expect_violations;
  };
  const std::vector<Case> cases = {
      {"unordered local streamed to output",
       {{"src/sim/a.cpp",
         "void f(std::ostream& os) {\n"
         "  std::unordered_map<int, int> m;\n"
         "  for (const auto& [k, v] : m) os << k << v;\n"
         "}\n"}},
       1},
      {"member declared in header, iterated in cpp",
       {{"src/sim/a.hpp",
         "struct S { std::unordered_set<int> pending_; };\n"},
        {"src/sim/a.cpp",
         "void S::flush(Queue& q) {\n"
         "  for (int id : pending_) q.push(id);\n"
         "}\n"}},
       1},
      {"std::map iteration with output is fine",
       {{"src/sim/a.cpp",
         "void f(std::ostream& os) {\n"
         "  std::map<int, int> m;\n"
         "  for (const auto& [k, v] : m) os << k << v;\n"
         "}\n"}},
       0},
      {"unordered iteration that only aggregates is fine",
       {{"src/sim/a.cpp",
         "int f(const std::unordered_map<int, int>& m) {\n"
         "  int sum = 0;\n"
         "  for (const auto& [k, v] : m) sum += v;\n"
         "  return sum;\n"
         "}\n"}},
       0},
      {"alias of unordered_map is traced",
       {{"src/sim/a.hpp",
         "using IdIndex = std::unordered_map<int, int>;\n"},
        {"src/sim/a.cpp",
         "void f(const IdIndex& idx, std::ostream& os) {\n"
         "  for (const auto& [k, v] : idx) os << k;\n"
         "}\n"}},
       1},
      {"metrics sink counts",
       {{"src/sim/a.cpp",
         "void f(std::unordered_set<int> live, Metrics& m) {\n"
         "  for (int id : live) m.record(id);\n"
         "}\n"}},
       1},
      {"single-statement body without braces",
       {{"src/sim/a.cpp",
         "void f(std::unordered_set<int> live, Queue& q) {\n"
         "  for (int id : live) q.push(id);\n"
         "}\n"}},
       1},
      {"waiver on the for line",
       {{"src/sim/a.cpp",
         "void f(std::unordered_set<int> live, Queue& q) {\n"
         "  // order irrelevant: queue is drained into a sorted set\n"
         "  for (int id : live)  // gsight-analyze: allow(unordered-iteration)\n"
         "    q.push(id);\n"
         "}\n"}},
       0},
      {"index-for over unordered container is out of scope",
       {{"src/sim/a.cpp",
         "void f(std::unordered_map<int, int>& m, std::ostream& os) {\n"
         "  for (int i = 0; i < 3; ++i) os << m.size();\n"
         "}\n"}},
       0},
  };
  int failures = 0;
  for (const auto& c : cases) {
    SourceSet set;
    for (const auto& [rel, text] : c.files) add_source(&set, rel, text);
    std::vector<Violation> vs;
    check_determinism(set, &vs);
    if (static_cast<int>(vs.size()) != c.expect_violations) {
      ++failures;
      std::cout << "determinism self-test FAIL: " << c.name << " (expected "
                << c.expect_violations << ", got " << vs.size() << ")\n";
      for (const auto& v : vs) {
        std::cout << "    " << v.file << ":" << v.line << " [" << v.rule
                  << "]\n";
      }
    }
  }
  std::cout << "gsight_analyze --self-test=determinism: " << cases.size()
            << " cases, " << failures << " failure"
            << (failures == 1 ? "" : "s") << "\n";
  return failures;
}

}  // namespace gsight::analysis
