// Lock-discipline pass. Clang's -Wthread-safety verifies that annotated
// members are only touched under their mutex — but it cannot notice a
// member that was never annotated at all, and the default toolchain here
// is GCC, where the attributes compile to nothing. This pass closes that
// gap structurally: it runs on every build and fails when a class owns a
// mutex but leaves a mutable member unannotated.
//
// Rule `unguarded-member`: inside a class/struct that declares a mutex
// member (core::Mutex or std::mutex), every non-static data member must
//   * carry GSIGHT_GUARDED_BY(…) / GSIGHT_PT_GUARDED_BY(…), or
//   * be of an inherently-synchronised / immutable kind —
//     std::atomic, std::condition_variable, the mutex itself,
//     std::once_flag, or a `const` member, or
//   * carry an explicit waiver on its declaration line:
//         // gsight-analyze: allow(unguarded-member)  <why it is safe>
//
// Function declarations and bodies, using/typedef aliases, static
// members, friends and nested type definitions are skipped; only data
// members are audited. The pass is deliberately per-class and purely
// lexical — it decides "is every member accounted for", and leaves
// "is every access actually locked" to clang (stage 2c of check.sh).
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"

namespace gsight::analysis {

/// Run the pass over every file of `files`, appending violations.
void check_lock_discipline(const SourceSet& files,
                           std::vector<Violation>* out);

/// Seeded-violation corpus; returns the number of failing cases.
int lock_discipline_self_test();

}  // namespace gsight::analysis
