// Shared lexical front end for the repo's static-analysis tools
// (gsight_lint, gsight_analyze). One scan of a translation unit yields
// three synchronized views:
//
//   raw    — the original lines, for reporting and waiver parsing;
//   code   — the lines with comments and string/char literals blanked
//            (the view the line-oriented lint rules match against);
//   tokens — a real C++ token stream (identifiers, numbers, literals,
//            multi-character punctuation) with line/column positions,
//            the view the token-aware gsight_analyze passes consume.
//
// This is a *lexer*, not a parser: it understands comments, raw strings,
// digit separators and maximal-munch operators, but it does not expand
// macros or resolve names. Every pass built on it is a repo-convention
// check, where lexical fidelity is exactly enough.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gsight::analysis {

enum class TokKind {
  kIdent,   ///< identifiers and keywords (the lexer does not distinguish)
  kNumber,  ///< integer / floating literals, including 1'000 and 0x1p3
  kString,  ///< string literal, text includes the quotes (raw strings too)
  kChar,    ///< character literal, text includes the quotes
  kPunct,   ///< operators and punctuation, longest-match (e.g. "::", "<<=")
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character
  std::size_t col = 0;   ///< 0-based column of the token's first character
};

/// The three views of one file. Lines in `raw` and `code` are parallel;
/// `code` lines are the same length as their `raw` counterparts with
/// comments and string/char literal contents replaced by spaces.
struct LexedFile {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<Token> tokens;
};

/// Lex a whole file. Never fails: malformed input (unterminated string,
/// stray bytes) degrades to best-effort tokens rather than an error, so
/// analysis tools can always run on a tree that may not even compile.
LexedFile lex(const std::string& text);

/// Index of the token matching the opener at `open_idx` (whose text must
/// be "(", "[" or "{"), honouring nesting of that same pair. Returns
/// tokens.size() when unmatched.
std::size_t match_delim(const std::vector<Token>& tokens,
                        std::size_t open_idx);

/// Index of the ">" (or ">>") token closing a template-argument list
/// opened by the "<" at `open_idx`. A ">>" closes two levels, which is
/// how `vector<vector<int>>` lexes. Returns tokens.size() when the list
/// never closes before a ";" at nesting depth zero (i.e. `<` was a
/// comparison, not a template opener).
std::size_t match_angle(const std::vector<Token>& tokens,
                        std::size_t open_idx);

}  // namespace gsight::analysis
