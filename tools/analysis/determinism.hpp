// Determinism dataflow pass. Gsight's contract is that twin runs of a
// campaign (and the replayed serve bench) are byte-identical; iterating a
// hash-ordered container on the way to any observable output breaks that
// silently, because libstdc++'s bucket order is stable enough to pass
// small tests and still differ across platforms and seeds.
//
// Rule `unordered-iteration`: a range-for whose range expression names an
// unordered container — declared anywhere in the scanned tree as
// std::unordered_map / std::unordered_set (directly, or through a `using`
// alias of one) — and whose body reaches a sink:
//
//   * stream output        (`<<` anywhere in the body)
//   * container emission   push / push_back / emplace / emplace_back /
//                          insert / schedule / enqueue
//   * metrics & logging    record / observe / write / print / printf /
//                          log / emit / add_event
//
// Bodies that only aggregate (sums, counts, min/max) are order-free and
// pass. Declarations are collected globally across the SourceSet first,
// so a member declared in a header is recognised when its .cpp iterates
// it. Waive on the `for` line with
//     // gsight-analyze: allow(unordered-iteration)
// when order provably does not reach an output (and say why).
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"

namespace gsight::analysis {

/// Run the pass over every file of `files`, appending violations.
void check_determinism(const SourceSet& files, std::vector<Violation>* out);

/// Seeded-violation corpus; returns the number of failing cases.
int determinism_self_test();

}  // namespace gsight::analysis
