#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>
#include <regex>
#include <sstream>

namespace gsight::analysis {

std::set<std::string> allowed_rules(const std::string& raw_line) {
  std::set<std::string> out;
  static const std::regex kAllow(
      R"(gsight-(?:lint|analyze):\s*allow\(([A-Za-z0-9_,\- ]+)\))");
  std::smatch m;
  if (std::regex_search(raw_line, m, kAllow)) {
    std::stringstream ss(m[1].str());
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                 rule.end());
      if (!rule.empty()) out.insert(rule);
    }
  }
  return out;
}

bool waived(const LexedFile& file, std::size_t line,
            const std::string& rule) {
  if (line == 0 || line > file.raw.size()) return false;
  return allowed_rules(file.raw[line - 1]).count(rule) != 0;
}

bool waived_in_range(const LexedFile& file, std::size_t first,
                     std::size_t last, const std::string& rule) {
  for (std::size_t l = first; l <= last && l <= file.raw.size(); ++l) {
    if (waived(file, l, rule)) return true;
  }
  return false;
}

void add_source(SourceSet* set, const std::string& rel,
                const std::string& text) {
  (*set)[rel] = lex(text);
}

int report(const std::string& tool, const std::vector<Violation>& violations,
           std::size_t files_scanned) {
  for (const auto& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << tool << ": " << files_scanned << " files, "
            << violations.size() << " violation"
            << (violations.size() == 1 ? "" : "s") << "\n";
  return violations.empty() ? 0 : 1;
}

}  // namespace gsight::analysis
