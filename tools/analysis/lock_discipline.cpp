#include "analysis/lock_discipline.hpp"

#include <iostream>
#include <set>
#include <sstream>

namespace gsight::analysis {

namespace {

/// Types that synchronise themselves (or are the lock): a member of one
/// of these kinds needs no GUARDED_BY.
const std::set<std::string> kExemptTypes = {
    "atomic",         "atomic_flag",
    "condition_variable", "condition_variable_any",
    "mutex",          "shared_mutex",
    "recursive_mutex", "once_flag",
    "Mutex",          "MutexLock",
    "MutexUniqueLock", "thread",
    "jthread",
};

/// Mutex-ish member types whose presence switches the audit on.
const std::set<std::string> kMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "Mutex",
};

/// GSIGHT_* annotation macros: an ident from this set followed by `(` is
/// an attribute, not a function declarator.
const std::set<std::string> kAnnotationMacros = {
    "GSIGHT_GUARDED_BY",   "GSIGHT_PT_GUARDED_BY", "GSIGHT_REQUIRES",
    "GSIGHT_EXCLUDES",     "GSIGHT_ACQUIRE",       "GSIGHT_RELEASE",
    "GSIGHT_TRY_ACQUIRE",  "GSIGHT_CAPABILITY",    "GSIGHT_RETURN_CAPABILITY",
    "GSIGHT_THREAD_ANNOTATION",
};

const std::set<std::string> kSkipLeaders = {
    "using",  "typedef", "friend", "static",
    "template", "operator", "public", "private",
    "protected", "enum",  "union",
};

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Skip a template-argument list starting at `i` if one opens there;
/// returns the index just past it (or `i` unchanged).
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  if (i < toks.size() && toks[i].kind == TokKind::kPunct &&
      toks[i].text == "<") {
    const std::size_t close = match_angle(toks, i);
    if (close < toks.size()) return close + 1;
  }
  return i;
}

struct Member {
  std::string name;
  std::size_t first_line = 0;
  std::size_t last_line = 0;
  bool exempt = false;
  bool annotated = false;
  bool is_mutex = false;
};

/// Classify the statement tokens [begin, end) as a data member; returns
/// false when the statement is a function, alias, nested type, etc.
bool classify_member(const std::vector<Token>& toks, std::size_t begin,
                     std::size_t end, Member* out) {
  if (begin >= end) return false;
  if (toks[begin].kind == TokKind::kIdent &&
      kSkipLeaders.count(toks[begin].text) != 0) {
    return false;
  }
  if (toks[begin].text == "~" || toks[begin].text == "class" ||
      toks[begin].text == "struct") {
    return false;
  }
  out->first_line = toks[begin].line;
  out->last_line = toks[end - 1].line;
  // Exempt/mutex kind detection looks at every token *including*
  // template arguments: a vector<atomic<…>> of counters is as
  // self-synchronised as a bare atomic.
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (kExemptTypes.count(toks[i].text) != 0) out->exempt = true;
    if (kMutexTypes.count(toks[i].text) != 0) out->is_mutex = true;
  }
  std::string last_ident;
  bool name_frozen = false;
  for (std::size_t i = begin; i < end;) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct && t.text == "<") {
      const std::size_t next = skip_angles(toks, i);
      if (next != i) {
        i = next;
        continue;
      }
    }
    if (t.kind == TokKind::kIdent) {
      if (kAnnotationMacros.count(t.text) != 0) {
        if (t.text == "GSIGHT_GUARDED_BY" ||
            t.text == "GSIGHT_PT_GUARDED_BY") {
          out->annotated = true;
        }
        name_frozen = true;
        // Skip the attribute's argument list.
        if (i + 1 < end && toks[i + 1].text == "(") {
          i = match_delim(toks, i + 1) + 1;
          continue;
        }
        ++i;
        continue;
      }
      // `const` only exempts at the top level of the declaration —
      // vector<const X*> is still a mutable container.
      if (t.text == "const") out->exempt = true;
      if (!name_frozen) last_ident = t.text;
      ++i;
      continue;
    }
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        // A top-level paren not introduced by an annotation macro means
        // this is a function declarator.
        return false;
      }
      if (t.text == "=" || t.text == "{" || t.text == "[") {
        name_frozen = true;  // everything after is initialiser/extent
        if (t.text == "{" || t.text == "[") {
          const std::size_t close = match_delim(toks, i);
          i = (close < toks.size()) ? close + 1 : end;
          continue;
        }
      }
    }
    ++i;
  }
  if (last_ident.empty()) return false;
  out->name = last_ident;
  return true;
}

/// Audit one class body [open+1, close); `open` indexes the `{`.
void audit_class(const std::string& rel, const LexedFile& file,
                 const std::string& class_name, std::size_t open,
                 std::size_t close, std::vector<Violation>* out) {
  const auto& toks = file.tokens;
  std::vector<Member> members;
  bool has_mutex = false;
  std::size_t i = open + 1;
  while (i < close) {
    const Token& t = toks[i];
    // Access specifiers.
    if (t.kind == TokKind::kIdent &&
        (t.text == "public" || t.text == "private" || t.text == "protected") &&
        i + 1 < close && toks[i + 1].text == ":") {
      i += 2;
      continue;
    }
    if (t.text == ";") {
      ++i;
      continue;
    }
    // Gather one statement: up to a top-level `;`, treating a `{` whose
    // preceding token closes a declarator (`)`, const, noexcept,
    // override, final) as a function body to skip, and any other `{`
    // (nested type, brace initialiser) as a block to step over.
    const std::size_t begin = i;
    bool is_function_body = false;
    std::size_t end = begin;
    while (end < close) {
      const Token& s = toks[end];
      if (s.kind == TokKind::kPunct && s.text == "<") {
        const std::size_t next = skip_angles(toks, end);
        if (next != end && next <= close) {
          end = next;
          continue;
        }
      }
      if (s.text == ";") break;
      if (s.text == "(") {
        const std::size_t c = match_delim(toks, end);
        end = (c < toks.size()) ? c + 1 : close;
        continue;
      }
      if (s.text == "{") {
        const Token& prev = toks[end - 1];
        is_function_body =
            prev.text == ")" || is_ident(prev, "const") ||
            is_ident(prev, "noexcept") || is_ident(prev, "override") ||
            is_ident(prev, "final");
        const std::size_t c = match_delim(toks, end);
        end = (c < toks.size()) ? c + 1 : close;
        if (is_function_body) break;
        continue;
      }
      ++end;
    }
    const std::size_t stmt_end = end;
    // Advance past the terminator for the next round.
    i = stmt_end;
    while (i < close && toks[i].text == ";") ++i;
    if (is_function_body) continue;
    Member m;
    if (!classify_member(toks, begin, stmt_end, &m)) continue;
    if (m.is_mutex) has_mutex = true;
    members.push_back(std::move(m));
  }
  if (!has_mutex) return;
  for (const auto& m : members) {
    if (m.exempt || m.annotated) continue;
    if (waived_in_range(file, m.first_line, m.last_line,
                        "unguarded-member")) {
      continue;
    }
    std::ostringstream msg;
    msg << "class " << class_name << " owns a mutex but member '" << m.name
        << "' is neither GSIGHT_GUARDED_BY nor waived with "
           "allow(unguarded-member)";
    out->push_back({rel, m.first_line, "unguarded-member", msg.str()});
  }
}

void check_file(const std::string& rel, const LexedFile& file,
                std::vector<Violation>* out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(is_ident(toks[i], "class") || is_ident(toks[i], "struct"))) {
      continue;
    }
    if (i > 0 && (is_ident(toks[i - 1], "enum") ||
                  is_ident(toks[i - 1], "friend") ||
                  toks[i - 1].text == "<" || toks[i - 1].text == ",")) {
      continue;  // friend/enum class, or `class` in a template head
    }
    // Name = last plain ident before the body / base clause; attribute
    // macros (ident + parens) are stepped over.
    std::string name;
    std::size_t k = i + 1;
    while (k < toks.size()) {
      const Token& t = toks[k];
      if (t.text == ";") {
        k = toks.size();  // forward declaration
        break;
      }
      if (t.text == "{" || t.text == ":") break;
      if (t.kind == TokKind::kIdent && t.text != "final") {
        if (k + 1 < toks.size() && toks[k + 1].text == "(") {
          k = match_delim(toks, k + 1) + 1;  // attribute macro
          continue;
        }
        name = t.text;
      }
      ++k;
    }
    if (k >= toks.size() || name.empty()) continue;
    // Skip a base clause.
    while (k < toks.size() && toks[k].text != "{") ++k;
    if (k >= toks.size()) continue;
    const std::size_t close = match_delim(toks, k);
    if (close == toks.size()) continue;
    audit_class(rel, file, name, k, close, out);
    // Nested classes are found by this same linear scan.
  }
}

}  // namespace

void check_lock_discipline(const SourceSet& files,
                           std::vector<Violation>* out) {
  for (const auto& [rel, file] : files) check_file(rel, file, out);
}

int lock_discipline_self_test() {
  struct Case {
    const char* name;
    const char* text;
    int expect_violations;
  };
  const std::vector<Case> cases = {
      {"mutex + unannotated member",
       "class Counter {\n"
       " private:\n"
       "  std::mutex m_;\n"
       "  int count_ = 0;\n"
       "};\n",
       1},
      {"mutex + guarded member is clean",
       "class Counter {\n"
       " private:\n"
       "  core::Mutex m_;\n"
       "  int count_ GSIGHT_GUARDED_BY(m_) = 0;\n"
       "};\n",
       0},
      {"waiver accepted",
       "class Counter {\n"
       "  std::mutex m_;\n"
       "  int hits_ = 0;  // gsight-analyze: allow(unguarded-member) set "
       "before threads start\n"
       "};\n",
       0},
      {"no mutex, nothing to audit",
       "struct Point {\n"
       "  double x = 0;\n"
       "  double y = 0;\n"
       "};\n",
       0},
      {"exempt kinds pass",
       "class Pool {\n"
       "  core::Mutex m_;\n"
       "  std::condition_variable cv_;\n"
       "  std::atomic<bool> done_{false};\n"
       "  const int capacity_ = 4;\n"
       "};\n",
       0},
      {"functions and aliases are skipped",
       "class Queue {\n"
       " public:\n"
       "  using Item = int;\n"
       "  void push(Item v) GSIGHT_EXCLUDES(m_);\n"
       "  std::size_t size() const { return items_.size(); }\n"
       "\n"
       " private:\n"
       "  core::Mutex m_;\n"
       "  std::deque<Item> items_ GSIGHT_GUARDED_BY(m_);\n"
       "};\n",
       0},
      {"two bare members, two findings",
       "class Pair {\n"
       "  std::mutex m_;\n"
       "  int a_ = 0;\n"
       "  int b_ = 0;\n"
       "};\n",
       2},
      {"atomic elements inside a container are exempt",
       "class Histo {\n"
       "  core::Mutex m_;\n"
       "  int total_ GSIGHT_GUARDED_BY(m_) = 0;\n"
       "  std::vector<std::atomic<std::uint64_t>> counts_;\n"
       "};\n",
       0},
      {"pt_guarded_by counts as annotated",
       "class Box {\n"
       "  core::Mutex m_;\n"
       "  int* slot_ GSIGHT_PT_GUARDED_BY(m_) = nullptr;\n"
       "};\n",
       0},
      {"nested mutexed class is audited, outer is not",
       "class Outer {\n"
       "  struct Inner {\n"
       "    std::mutex m_;\n"
       "    int dirty_ = 0;\n"
       "  };\n"
       "  int plain_ = 0;\n"
       "};\n",
       1},
      {"templated member type parses",
       "class Cache {\n"
       "  core::Mutex m_;\n"
       "  std::map<std::string, std::vector<int>> entries_ "
       "GSIGHT_GUARDED_BY(m_);\n"
       "  std::function<void(int)> on_evict_;\n"
       "};\n",
       1},
      {"enum class is not a class",
       "enum class Mode { kA, kB };\n"
       "class Holder {\n"
       "  std::mutex m_;\n"
       "  Mode mode_ GSIGHT_GUARDED_BY(m_) = Mode::kA;\n"
       "};\n",
       0},
  };
  int failures = 0;
  for (const auto& c : cases) {
    SourceSet set;
    add_source(&set, "src/serve/case.hpp", c.text);
    std::vector<Violation> vs;
    check_lock_discipline(set, &vs);
    if (static_cast<int>(vs.size()) != c.expect_violations) {
      ++failures;
      std::cout << "lock-discipline self-test FAIL: " << c.name
                << " (expected " << c.expect_violations << ", got "
                << vs.size() << ")\n";
      for (const auto& v : vs) {
        std::cout << "    " << v.file << ":" << v.line << " [" << v.rule
                  << "] " << v.message << "\n";
      }
    }
  }
  std::cout << "gsight_analyze --self-test=lock-discipline: " << cases.size()
            << " cases, " << failures << " failure"
            << (failures == 1 ? "" : "s") << "\n";
  return failures;
}

}  // namespace gsight::analysis
