// Include-graph layering pass. Parses `#include "…"` edges between the
// files of src/ and enforces the intended architecture DAG:
//
//   layer 0  core/contracts.hpp, core/lock.hpp   (foundation, no deps)
//   layer 1  stats/                               (bit-stable RNG, summaries)
//   layer 2  ml/  obs/  workloads/                (independent mid layers)
//   layer 3  sim/                                 (event-driven simulator)
//   layer 4  profiling/                           (drives sim)
//   layer 5  core/ (everything else)              (encoders, predictor, runner)
//   layer 6  sched/  baselines/                   (placement, competitors)
//   layer 7  serve/                               (online serving daemon)
//
// Rules (names are what waivers must use):
//   layer-back-edge  an include whose target sits on a *higher* layer —
//                    the dependency inversion that breaks the DAG;
//   layer-lateral    an include into a different directory on the *same*
//                    layer (ml, obs and workloads are deliberately
//                    independent of each other);
//   layer-cycle      a cycle in the file-level include graph, reported
//                    with the full path (cycles inside one directory are
//                    invisible to layer numbers, hence the explicit DFS).
//
// Same-directory includes are always allowed; includes whose target is
// not under src/ (system headers, third-party) are ignored.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"

namespace gsight::analysis {

struct IncludeEdge {
  std::string from;   ///< repo-relative includer, e.g. "src/sim/engine.cpp"
  std::string to;     ///< repo-relative target, e.g. "src/sim/engine.hpp"
  std::size_t line;   ///< 1-based line of the #include
};

struct IncludeGraph {
  std::vector<IncludeEdge> edges;  ///< deterministic (file, line) order
};

/// Architecture layer of a repo-relative path; -1 when the file is not
/// part of the layered src/ tree (unknown directory — exempt from the
/// layer rules but still part of cycle detection).
int layer_of(const std::string& rel);

/// Extract all resolved src-internal include edges. `files` must be
/// keyed by repo-relative paths; a quoted include resolves when
/// "src/<target>" is a key.
IncludeGraph build_include_graph(const SourceSet& files);

/// Layer rules + cycle detection over the graph.
void check_layering(const IncludeGraph& graph, const SourceSet& files,
                    std::vector<Violation>* out);

/// Machine-readable dump (schema gsight-include-graph/v1): every file
/// with its layer, every edge, deterministically ordered.
std::string dump_graph_json(const IncludeGraph& graph,
                            const SourceSet& files);

/// Seeded-violation corpus; returns the number of failing cases.
int include_graph_self_test();

}  // namespace gsight::analysis
