// Hot-path allocation pass. The perf work that pooled RequestContexts and
// gave the encode/serve paths reusable scratch buffers only stays won if
// nobody reintroduces a per-request heap allocation later — a single
// make_shared on the request path is invisible in review and costs a
// malloc + atomic refcount per sim request (millions per campaign).
//
// Rule `alloc-in-hot-path`: in files that declare themselves hot with a
// raw marker line
//     // gsight-analyze: hot-path
// (by convention the first line of the file), every
//
//   * `new` expression        (includes make_shared's little sibling,
//                             placement new, and operator-new calls)
//   * `std::make_shared` call
//
// is flagged. `make_unique` is deliberately allowed: it is the setup-path
// idiom (constructors, deploy, pool growth) and owning containers make
// the allocation obvious. Waive a legitimate allocation on its line with
//     // gsight-analyze: allow(hot-alloc)
// and say why — the pool-growth `new` in RequestPool::acquire and the
// promise in predict_wait are the canonical examples.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"

namespace gsight::analysis {

/// Run the pass over every file of `files`, appending violations.
void check_hot_alloc(const SourceSet& files, std::vector<Violation>* out);

/// Seeded-violation corpus; returns the number of failing cases.
int hot_alloc_self_test();

}  // namespace gsight::analysis
