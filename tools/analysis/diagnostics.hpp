// Shared diagnostic plumbing for gsight_lint and gsight_analyze: the
// Violation record, the per-line waiver syntax, and the SourceSet (one
// lexed view of every file under a scan root).
//
// Waivers: a raw source line carrying
//     // gsight-lint: allow(rule-a,rule-b)
// or  // gsight-analyze: allow(rule-a,rule-b)
// waives exactly those rules on exactly that line (the two tool prefixes
// are interchangeable; use the one matching the tool that reports the
// finding). File-wide waivers are deliberately not offered — every
// exception stays visible where it happens.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/lexer.hpp"

namespace gsight::analysis {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Rules waived on this raw line (either tool prefix).
std::set<std::string> allowed_rules(const std::string& raw_line);

/// True when `rule` is waived on line `line` (1-based) of `file`.
bool waived(const LexedFile& file, std::size_t line, const std::string& rule);

/// True when `rule` is waived on any raw line in [first, last] (1-based,
/// inclusive) — for findings attached to multi-line constructs.
bool waived_in_range(const LexedFile& file, std::size_t first,
                     std::size_t last, const std::string& rule);

/// Every analysed file of a tree, keyed by repo-relative path with
/// forward slashes ("src/sim/engine.hpp"). std::map so all passes
/// iterate files in one deterministic order.
using SourceSet = std::map<std::string, LexedFile>;

/// Lex `text` into `set` under path `rel` (test corpora use this too).
void add_source(SourceSet* set, const std::string& rel,
                const std::string& text);

/// Print violations in file:line: [rule] message form and a summary
/// line prefixed with `tool`; returns the lint-style exit code (0 clean,
/// 1 violations).
int report(const std::string& tool, const std::vector<Violation>& violations,
           std::size_t files_scanned);

}  // namespace gsight::analysis
