#include "analysis/include_graph.hpp"

#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>

namespace gsight::analysis {

namespace {

/// Second path component: "src/sim/engine.hpp" -> "sim".
std::string dir_of(const std::string& rel) {
  const auto first = rel.find('/');
  if (first == std::string::npos) return "";
  const auto second = rel.find('/', first + 1);
  if (second == std::string::npos) return "";
  return rel.substr(first + 1, second - first - 1);
}

}  // namespace

int layer_of(const std::string& rel) {
  // File-level overrides: the foundation headers live in core/ but sit
  // below everything (stats and obs include core/contracts.hpp).
  if (rel == "src/core/contracts.hpp" || rel == "src/core/lock.hpp") return 0;
  static const std::map<std::string, int> kDirLayer = {
      {"stats", 1},     {"ml", 2},        {"obs", 2},  {"workloads", 2},
      {"sim", 3},       {"profiling", 4}, {"core", 5}, {"sched", 6},
      {"baselines", 6}, {"serve", 7},
  };
  if (rel.rfind("src/", 0) != 0) return -1;
  const auto it = kDirLayer.find(dir_of(rel));
  return it == kDirLayer.end() ? -1 : it->second;
}

IncludeGraph build_include_graph(const SourceSet& files) {
  IncludeGraph graph;
  for (const auto& [rel, file] : files) {
    // Token pattern per line: '#' 'include' "target". The lexer keeps
    // string contents in the token text, so the target is right there.
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "#" || toks[i + 1].text != "include") continue;
      if (toks[i + 2].kind != TokKind::kString) continue;  // <system>
      const std::string& lit = toks[i + 2].text;
      if (lit.size() < 2) continue;
      const std::string target = "src/" + lit.substr(1, lit.size() - 2);
      if (files.count(target) != 0) {
        graph.edges.push_back({rel, target, toks[i].line});
      }
    }
  }
  return graph;
}

namespace {

void check_cycles(const IncludeGraph& graph, std::vector<Violation>* out) {
  // Adjacency in deterministic order.
  std::map<std::string, std::vector<const IncludeEdge*>> adj;
  for (const auto& e : graph.edges) adj[e.from].push_back(&e);
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [node, _] : adj) color[node] = Color::kWhite;

  // Iterative DFS keeping the explicit path for cycle reporting.
  struct Frame {
    std::string node;
    std::size_t next = 0;
  };
  for (const auto& [root, _] : adj) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto it = adj.find(top.node);
      if (it == adj.end() || top.next >= it->second.size()) {
        color[top.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const IncludeEdge* e = it->second[top.next++];
      auto& c = color[e->to];
      if (c == Color::kWhite) {
        c = Color::kGray;
        stack.push_back({e->to});
      } else if (c == Color::kGray) {
        // Back edge: the cycle is the stack suffix from e->to.
        std::ostringstream path;
        bool in_cycle = false;
        for (const auto& f : stack) {
          if (f.node == e->to) in_cycle = true;
          if (in_cycle) path << f.node << " -> ";
        }
        path << e->to;
        out->push_back({e->from, e->line, "layer-cycle",
                        "include cycle: " + path.str()});
      }
    }
  }
}

}  // namespace

void check_layering(const IncludeGraph& graph, const SourceSet& files,
                    std::vector<Violation>* out) {
  for (const auto& e : graph.edges) {
    const int from_layer = layer_of(e.from);
    const int to_layer = layer_of(e.to);
    if (from_layer < 0 || to_layer < 0) continue;  // unlayered directory
    if (dir_of(e.from) == dir_of(e.to) &&
        (from_layer == to_layer || to_layer == 0)) {
      continue;  // within one directory (or down to its foundation files)
    }
    const auto it = files.find(e.from);
    if (to_layer > from_layer) {
      if (it != files.end() && waived(it->second, e.line, "layer-back-edge")) {
        continue;
      }
      std::ostringstream msg;
      msg << "include of " << e.to << " (layer " << to_layer
          << ") from layer " << from_layer
          << " inverts the architecture DAG";
      out->push_back({e.from, e.line, "layer-back-edge", msg.str()});
    } else if (to_layer == from_layer) {
      if (it != files.end() && waived(it->second, e.line, "layer-lateral")) {
        continue;
      }
      std::ostringstream msg;
      msg << "include of " << e.to << " crosses directories on layer "
          << to_layer << "; these subsystems are deliberately independent";
      out->push_back({e.from, e.line, "layer-lateral", msg.str()});
    }
  }
  check_cycles(graph, out);
}

std::string dump_graph_json(const IncludeGraph& graph,
                            const SourceSet& files) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"gsight-include-graph/v1\",\n  \"files\": [\n";
  bool first = true;
  for (const auto& [rel, _] : files) {
    if (rel.rfind("src/", 0) != 0) continue;
    os << (first ? "" : ",\n") << "    {\"path\": \"" << rel
       << "\", \"layer\": " << layer_of(rel) << "}";
    first = false;
  }
  os << "\n  ],\n  \"edges\": [\n";
  first = true;
  for (const auto& e : graph.edges) {
    os << (first ? "" : ",\n") << "    {\"from\": \"" << e.from
       << "\", \"to\": \"" << e.to << "\", \"line\": " << e.line << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

int include_graph_self_test() {
  struct Case {
    const char* name;
    std::vector<std::pair<const char*, const char*>> files;  // rel, text
    const char* expect_rule;  // nullptr = expect clean
  };
  const std::vector<Case> cases = {
      {"clean downward include",
       {{"src/serve/s.hpp", "#pragma once\n#include \"ml/m.hpp\"\n"},
        {"src/ml/m.hpp", "#pragma once\n"}},
       nullptr},
      {"back edge ml -> sim",
       {{"src/ml/m.hpp", "#pragma once\n#include \"sim/e.hpp\"\n"},
        {"src/sim/e.hpp", "#pragma once\n"}},
       "layer-back-edge"},
      {"layer-skipping back edge stats -> serve",
       {{"src/stats/r.cpp", "#include \"serve/s.hpp\"\n"},
        {"src/serve/s.hpp", "#pragma once\n"}},
       "layer-back-edge"},
      {"lateral ml -> obs",
       {{"src/ml/m.cpp", "#include \"obs/o.hpp\"\n"},
        {"src/obs/o.hpp", "#pragma once\n"}},
       "layer-lateral"},
      {"same directory is free",
       {{"src/sim/a.hpp", "#pragma once\n#include \"sim/b.hpp\"\n"},
        {"src/sim/b.hpp", "#pragma once\n"}},
       nullptr},
      {"sharded-engine internals stay inside sim",
       {{"src/sim/sharded_engine.hpp",
         "#pragma once\n#include \"sim/shard.hpp\"\n"
         "#include \"sim/mailbox.hpp\"\n"},
        {"src/sim/shard.hpp", "#pragma once\n#include \"sim/mailbox.hpp\"\n"},
        {"src/sim/mailbox.hpp", "#pragma once\n"}},
       nullptr},
      {"sim may reach down to the ml thread pool",
       {{"src/sim/sharded_engine.cpp", "#include \"ml/thread_pool.hpp\"\n"},
        {"src/ml/thread_pool.hpp", "#pragma once\n"}},
       nullptr},
      {"contracts override lets stats reach core",
       {{"src/stats/h.cpp", "#include \"core/contracts.hpp\"\n"},
        {"src/core/contracts.hpp", "#pragma once\n"}},
       nullptr},
      {"but the rest of core stays above stats",
       {{"src/stats/h.cpp", "#include \"core/predictor.hpp\"\n"},
        {"src/core/predictor.hpp", "#pragma once\n"}},
       "layer-back-edge"},
      {"include inside a comment is ignored",
       {{"src/ml/m.cpp", "// #include \"sim/e.hpp\"\n"},
        {"src/sim/e.hpp", "#pragma once\n"}},
       nullptr},
      {"cycle within a directory",
       {{"src/sim/a.hpp", "#pragma once\n#include \"sim/b.hpp\"\n"},
        {"src/sim/b.hpp", "#pragma once\n#include \"sim/a.hpp\"\n"}},
       "layer-cycle"},
      {"waiver on the include line",
       {{"src/ml/m.cpp",
         "#include \"obs/o.hpp\"  // gsight-analyze: allow(layer-lateral)\n"},
        {"src/obs/o.hpp", "#pragma once\n"}},
       nullptr},
      {"unlayered directory is exempt",
       {{"src/experimental/x.cpp", "#include \"serve/s.hpp\"\n"},
        {"src/serve/s.hpp", "#pragma once\n"}},
       nullptr},
      {"serve reaches down to the obs live stream",
       {{"src/serve/fleet.hpp",
         "#pragma once\n#include \"obs/live_stream.hpp\"\n"
         "#include \"obs/metrics.hpp\"\n"},
        {"src/obs/live_stream.hpp", "#pragma once\n"},
        {"src/obs/metrics.hpp", "#pragma once\n"}},
       nullptr},
      {"but obs must not reach back up into serve",
       {{"src/obs/live_stream.cpp", "#include \"serve/fleet.hpp\"\n"},
        {"src/serve/fleet.hpp", "#pragma once\n"}},
       "layer-back-edge"},
      {"request fan-out stays inside sim (request -> gateway/instance)",
       {{"src/sim/request.cpp",
         "#include \"sim/request.hpp\"\n#include \"sim/gateway.hpp\"\n"
         "#include \"sim/instance.hpp\"\n"},
        {"src/sim/request.hpp", "#pragma once\n"},
        {"src/sim/gateway.hpp", "#pragma once\n"},
        {"src/sim/instance.hpp", "#pragma once\n"}},
       nullptr},
      {"server must not reach up into the gateway",
       {{"src/sim/server.hpp", "#pragma once\n#include \"sim/gateway.hpp\"\n"},
        {"src/sim/gateway.hpp",
         "#pragma once\n#include \"sim/server.hpp\"\n"}},
       "layer-cycle"},
      {"cloning frontier reaches down from sched into sim",
       {{"src/sched/cloning_frontier.cpp",
         "#include \"sched/cloning_frontier.hpp\"\n"
         "#include \"sim/platform.hpp\"\n"},
        {"src/sched/cloning_frontier.hpp",
         "#pragma once\n#include \"sim/gateway.hpp\"\n"},
        {"src/sim/platform.hpp", "#pragma once\n"},
        {"src/sim/gateway.hpp", "#pragma once\n"}},
       nullptr},
  };
  int failures = 0;
  for (const auto& c : cases) {
    SourceSet set;
    for (const auto& [rel, text] : c.files) add_source(&set, rel, text);
    std::vector<Violation> vs;
    const IncludeGraph g = build_include_graph(set);
    check_layering(g, set, &vs);
    const bool ok =
        c.expect_rule == nullptr
            ? vs.empty()
            : std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
                return v.rule == c.expect_rule;
              });
    if (!ok) {
      ++failures;
      std::cout << "include-graph self-test FAIL: " << c.name
                << " (expected " << (c.expect_rule ? c.expect_rule : "clean")
                << ", got " << vs.size() << " violation(s)";
      for (const auto& v : vs) std::cout << " [" << v.rule << "]";
      std::cout << ")\n";
    }
  }
  std::cout << "gsight_analyze --self-test=layering: " << cases.size()
            << " cases, " << failures << " failure"
            << (failures == 1 ? "" : "s") << "\n";
  return failures;
}

}  // namespace gsight::analysis
