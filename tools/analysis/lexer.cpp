#include "analysis/lexer.hpp"

#include <algorithm>
#include <cctype>

namespace gsight::analysis {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character operators, longest first (maximal munch).
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  ".*", "##",
};

/// Raw-string prefixes: identifier tokens that, when immediately followed
/// by a double quote, start a raw string literal.
bool raw_string_prefix(const std::string& s) {
  return s == "R" || s == "LR" || s == "uR" || s == "UR" || s == "u8R";
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile run() {
    while (pos_ < text_.size()) step();
    // Final partial line (file not ending in '\n'); complete lines were
    // flushed by their newline.
    if (!raw_line_.empty() || !code_line_.empty()) flush_line();
    return std::move(out_);
  }

 private:
  char cur() const { return text_[pos_]; }
  char peek(std::size_t ahead = 1) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  /// Append `c` to the raw line and advance; `code_c` (or a space) goes
  /// to the code view at the same column.
  void advance(bool keep_in_code) {
    const char c = text_[pos_++];
    if (c == '\n') {
      flush_line();
      ++line_;
      col_ = 0;
      return;
    }
    raw_line_.push_back(c);
    code_line_.push_back(keep_in_code ? c : ' ');
    ++col_;
  }

  void flush_line() {
    out_.raw.push_back(raw_line_);
    out_.code.push_back(code_line_);
    raw_line_.clear();
    code_line_.clear();
  }

  void emit(TokKind kind, std::size_t start_line, std::size_t start_col,
            std::string text) {
    out_.tokens.push_back({kind, std::move(text), start_line + 1, start_col});
  }

  void step() {
    const char c = cur();
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(true);
      return;
    }
    if (c == '/' && peek() == '/') {
      while (pos_ < text_.size() && cur() != '\n') advance(false);
      return;
    }
    if (c == '/' && peek() == '*') {
      advance(false);
      advance(false);
      while (pos_ < text_.size() && !(cur() == '*' && peek() == '/')) {
        advance(false);
      }
      if (pos_ < text_.size()) {
        advance(false);
        advance(false);
      }
      return;
    }
    if (c == '"') {
      lex_string();
      return;
    }
    if (c == '\'') {
      lex_char();
      return;
    }
    if (digit(c) || (c == '.' && digit(peek()))) {
      lex_number();
      return;
    }
    if (ident_start(c)) {
      lex_ident();
      return;
    }
    lex_punct();
  }

  void lex_string() {
    const std::size_t l = line_, col = col_;
    std::string text;
    text.push_back(cur());
    advance(false);
    while (pos_ < text_.size() && cur() != '"' && cur() != '\n') {
      if (cur() == '\\' && peek() != '\0' && peek() != '\n') {
        text.push_back(cur());
        advance(false);
      }
      text.push_back(cur());
      advance(false);
    }
    if (pos_ < text_.size() && cur() == '"') {
      text.push_back(cur());
      advance(false);
    }
    emit(TokKind::kString, l, col, std::move(text));
  }

  void lex_char() {
    const std::size_t l = line_, col = col_;
    std::string text;
    text.push_back(cur());
    advance(false);
    while (pos_ < text_.size() && cur() != '\'' && cur() != '\n') {
      if (cur() == '\\' && peek() != '\0' && peek() != '\n') {
        text.push_back(cur());
        advance(false);
      }
      text.push_back(cur());
      advance(false);
    }
    if (pos_ < text_.size() && cur() == '\'') {
      text.push_back(cur());
      advance(false);
    }
    emit(TokKind::kChar, l, col, std::move(text));
  }

  /// R"delim( ... )delim" — the whole literal becomes one kString token
  /// (blanked in the code view, like every literal).
  void lex_raw_string() {
    const std::size_t l = line_, col = col_;
    std::string text;
    text.push_back(cur());  // the opening quote
    advance(false);
    std::string delim;
    while (pos_ < text_.size() && cur() != '(' && cur() != '\n') {
      delim.push_back(cur());
      text.push_back(cur());
      advance(false);
    }
    const std::string closer = ")" + delim + "\"";
    while (pos_ < text_.size()) {
      if (text_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t k = 0; k < closer.size(); ++k) {
          text.push_back(cur());
          advance(false);
        }
        break;
      }
      if (cur() != '\n') text.push_back(cur());
      advance(false);
    }
    emit(TokKind::kString, l, col, std::move(text));
  }

  void lex_number() {
    const std::size_t l = line_, col = col_;
    std::string text;
    while (pos_ < text_.size()) {
      const char c = cur();
      if (ident_char(c) || c == '.' ||
          (c == '\'' && digit(peek())) ||  // digit separator 1'000'000
          ((c == '+' || c == '-') && !text.empty() &&
           (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
            text.back() == 'P'))) {
        text.push_back(c);
        advance(true);
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, l, col, std::move(text));
  }

  void lex_ident() {
    const std::size_t l = line_, col = col_;
    std::string text;
    while (pos_ < text_.size() && ident_char(cur())) {
      text.push_back(cur());
      advance(true);
    }
    // Raw-string prefix glued to a quote: drop the identifier, lex the
    // raw literal as a single string token instead.
    if (pos_ < text_.size() && cur() == '"' && raw_string_prefix(text)) {
      // Un-emit the prefix from the code view (it belongs to the literal).
      for (std::size_t k = code_line_.size() - text.size();
           k < code_line_.size(); ++k) {
        code_line_[k] = ' ';
      }
      lex_raw_string();
      return;
    }
    emit(TokKind::kIdent, l, col, std::move(text));
  }

  void lex_punct() {
    const std::size_t l = line_, col = col_;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (text_.compare(pos_, len, p) == 0) {
        for (std::size_t k = 0; k < len; ++k) advance(true);
        emit(TokKind::kPunct, l, col, p);
        return;
      }
    }
    std::string one(1, cur());
    advance(true);
    emit(TokKind::kPunct, l, col, std::move(one));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;  // 0-based internally
  std::size_t col_ = 0;
  std::string raw_line_, code_line_;
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& text) { return Lexer(text).run(); }

std::size_t match_delim(const std::vector<Token>& tokens,
                        std::size_t open_idx) {
  if (open_idx >= tokens.size()) return tokens.size();
  const std::string& open = tokens[open_idx].text;
  std::string close;
  if (open == "(") {
    close = ")";
  } else if (open == "[") {
    close = "]";
  } else if (open == "{") {
    close = "}";
  } else {
    return tokens.size();
  }
  std::size_t depth = 0;
  for (std::size_t i = open_idx; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == open) ++depth;
    if (tokens[i].text == close && --depth == 0) return i;
  }
  return tokens.size();
}

std::size_t match_angle(const std::vector<Token>& tokens,
                        std::size_t open_idx) {
  if (open_idx >= tokens.size() || tokens[open_idx].text != "<") {
    return tokens.size();
  }
  std::size_t depth = 0;
  std::size_t paren = 0;
  for (std::size_t i = open_idx; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++paren;
    if ((t.text == ")" || t.text == "]" || t.text == "}") && paren > 0) {
      --paren;
      continue;
    }
    if (paren > 0) continue;  // angle depth is only tracked at bracket top
    if (t.text == "<") ++depth;
    if (t.text == ">") {
      if (--depth == 0) return i;
    }
    if (t.text == ">>") {
      if (depth <= 2) return i;
      depth -= 2;
    }
    // A template-argument list never crosses a statement boundary.
    if (t.text == ";") return tokens.size();
  }
  return tokens.size();
}

}  // namespace gsight::analysis
