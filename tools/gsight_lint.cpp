// gsight_lint — repo-specific determinism and hygiene linter.
//
// Scans the C++ sources under src/, tests/, and bench/ for hazards that
// break bit-exact replay or basic header hygiene. Lexical preprocessing
// (comment/literal stripping, waiver parsing) comes from the shared
// tools/analysis library, the same tokenizer gsight_analyze uses; the
// rules themselves stay line-oriented regexes over the stripped code
// view, because every rule below is a *repo convention*, not a C++
// legality question, and conventions are exactly what survives a cheap
// lexical check.
//
// Rules
//   banned-random   rand()/srand()/std::mt19937/std::random_device/
//                   drand48 anywhere: all randomness must flow through
//                   stats::Rng, which is bit-stable across standard
//                   libraries. (stats/rng.* itself is exempt.)
//   wall-clock      time(), gettimeofday(), clock_gettime(),
//                   std::chrono::{system,steady,high_resolution}_clock,
//                   localtime/gmtime in src/ and in the deterministic
//                   test suites (tests/sim, tests/serve, tests/core) —
//                   simulation code must take time from
//                   sim::Engine::now(), and deterministic tests must
//                   drive serve code through ManualClock. (bench/ and
//                   the remaining test dirs may measure real time.)
//   ptr-key-container  unordered_map/unordered_set keyed by a pointer
//                   type in src/sim — iteration order follows the
//                   allocator, which silently breaks replay.
//   simtime-eq      ==/!= on a variable declared SimTime in the same
//                   file — floating-point simulation clocks must be
//                   compared with tolerances or orderings.
//   pragma-once     every header under the scan roots must contain
//                   #pragma once.
//
// Escape hatch: a line carrying `// gsight-lint: allow(rule)` (or
// `allow(rule-a,rule-b)`) waives those rules for that line. File-wide
// waivers are intentionally not offered — each exception should be
// visible where it happens.
//
// Exit status: 0 when clean, 1 when violations were found, 2 on usage or
// I/O errors — so `ctest` can run it as an ordinary test.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/lexer.hpp"

namespace fs = std::filesystem;

using gsight::analysis::allowed_rules;
using gsight::analysis::lex;
using gsight::analysis::LexedFile;
using gsight::analysis::Violation;

namespace {

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct Rule {
  std::string name;
  std::regex pattern;
  std::string message;
  /// Return true when the rule applies to this file path (relative).
  bool (*applies)(const std::string& rel);
};

bool in_src(const std::string& rel) { return rel.rfind("src/", 0) == 0; }
bool in_sim(const std::string& rel) { return rel.rfind("src/sim/", 0) == 0; }
bool not_rng(const std::string& rel) {
  return rel != "src/stats/rng.hpp" && rel != "src/stats/rng.cpp";
}
/// Wall-clock discipline: src/ plus the test suites whose subjects are
/// deterministic by contract (twin-run campaigns, ManualClock serving).
bool deterministic_scope(const std::string& rel) {
  return in_src(rel) || rel.rfind("tests/sim/", 0) == 0 ||
         rel.rfind("tests/serve/", 0) == 0 || rel.rfind("tests/core/", 0) == 0;
}

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"banned-random",
       std::regex(R"((^|[^\w:])(rand|srand|rand_r|drand48|lrand48)\s*\()"),
       "C random APIs are not replay-deterministic; draw from stats::Rng",
       +[](const std::string& rel) { return not_rng(rel); }},
      {"banned-random",
       std::regex(R"(std\s*::\s*(mt19937(_64)?|minstd_rand0?|random_device|)"
                  R"(default_random_engine|uniform_int_distribution|)"
                  R"(uniform_real_distribution|normal_distribution|)"
                  R"(bernoulli_distribution|poisson_distribution))"),
       "std <random> is not bit-stable across standard libraries; use "
       "stats::Rng",
       +[](const std::string& rel) { return not_rng(rel); }},
      {"wall-clock",
       std::regex(R"((^|[^\w:.])(time|gettimeofday|clock_gettime|clock|)"
                  R"(localtime|gmtime|mktime|strftime)\s*\()"),
       "wall-clock calls in deterministic code; take time from "
       "Engine::now() or a ManualClock",
       &deterministic_scope},
      {"wall-clock",
       std::regex(R"(std\s*::\s*chrono\s*::\s*(system_clock|steady_clock|)"
                  R"(high_resolution_clock))"),
       "std::chrono clocks in deterministic code; take time from "
       "Engine::now() or a ManualClock",
       &deterministic_scope},
      {"ptr-key-container",
       std::regex(R"(unordered_(map|set)\s*<\s*(const\s+)?[A-Za-z_][\w:]*\s*\*)"),
       "pointer-keyed unordered container iterates in allocator order and "
       "breaks replay; key by a stable id",
       &in_sim},
  };
  return kRules;
}

/// simtime-eq: collect identifiers declared `SimTime name` in this file,
/// then flag ==/!= comparisons that touch one of them.
void check_simtime_eq(const std::string& rel, const LexedFile& file,
                      std::vector<Violation>* out) {
  static const std::regex kDecl(R"(\bSimTime\s+([A-Za-z_]\w*)\s*[;=,){])");
  std::set<std::string> names;
  for (const auto& line : file.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  if (names.empty()) return;
  static const std::regex kCompare(
      R"(([A-Za-z_][\w.\->]*)\s*[=!]=\s*([A-Za-z_][\w.\->]*))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (std::sregex_iterator it(line.begin(), line.end(), kCompare), end;
         it != end; ++it) {
      auto last_component = [](std::string s) {
        const auto dot = s.find_last_of(".>");
        return dot == std::string::npos ? s : s.substr(dot + 1);
      };
      // Skip operands that are calls (`x == v.end()`): only *variables*
      // declared SimTime are tracked, and begin()/end()-style members
      // would otherwise collide with SimTime parameters named `end`.
      const std::size_t after =
          static_cast<std::size_t>(it->position(0) + it->length(0));
      const bool rhs_is_call = after < line.size() && line[after] == '(';
      const std::string lhs = last_component((*it)[1].str());
      const std::string rhs = last_component((*it)[2].str());
      if (names.count(lhs) != 0 || (!rhs_is_call && names.count(rhs) != 0)) {
        if (allowed_rules(file.raw[i]).count("simtime-eq") != 0) continue;
        out->push_back({rel, i + 1, "simtime-eq",
                        "exact ==/!= on a SimTime; compare with a tolerance "
                        "or ordering"});
      }
    }
  }
}

void check_pragma_once(const std::string& rel, const LexedFile& file,
                       std::vector<Violation>* out) {
  if (rel.size() < 4 || rel.compare(rel.size() - 4, 4, ".hpp") != 0) return;
  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    if (file.raw[i].find("#pragma once") != std::string::npos) return;
  }
  out->push_back({rel, 1, "pragma-once", "header lacks #pragma once"});
}

void check_file(const std::string& rel, const std::string& text,
                std::vector<Violation>* out) {
  const LexedFile file = lex(text);
  for (const auto& rule : rules()) {
    if (!rule.applies(rel)) continue;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
      if (!std::regex_search(file.code[i], rule.pattern)) continue;
      if (allowed_rules(file.raw[i]).count(rule.name) != 0) continue;
      out->push_back({rel, i + 1, rule.name, rule.message});
    }
  }
  check_simtime_eq(rel, file, out);
  check_pragma_once(rel, file, out);
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

// ---------------------------------------------------------------------------
// Self test: feed synthetic sources through check_file and verify each rule
// fires where it should and stays quiet where it should not. Registered as
// its own ctest so the linter cannot silently rot.
// ---------------------------------------------------------------------------

int self_test() {
  struct Case {
    const char* name;
    const char* rel;
    const char* text;
    const char* expect_rule;  // nullptr = expect clean
  };
  const Case cases[] = {
      {"rand call", "src/foo.cpp", "#include <x>\nint x = rand();\n",
       "banned-random"},
      {"mt19937", "tests/t.cpp", "std::mt19937 gen(42);\n", "banned-random"},
      {"random in comment", "src/foo.cpp", "// uses std::mt19937 internally\n",
       nullptr},
      {"random in string", "src/foo.cpp",
       "const char* s = \"std::mt19937\";\n", nullptr},
      {"rng.hpp exempt", "src/stats/rng.hpp",
       "#pragma once\n// replacement for std::mt19937\nstd::mt19937 g;\n",
       nullptr},
      {"rand-like identifier", "src/foo.cpp", "int strand(int);\nbrand();\n",
       nullptr},
      {"wall clock in src", "src/sim/x.cpp", "auto t = time(nullptr);\n",
       "wall-clock"},
      {"steady_clock in src", "src/sim/x.cpp",
       "auto t = std::chrono::steady_clock::now();\n", "wall-clock"},
      {"steady_clock in bench ok", "bench/b.cpp",
       "auto t = std::chrono::steady_clock::now();\n", nullptr},
      {"steady_clock in tests/sim", "tests/sim/t.cpp",
       "auto t = std::chrono::steady_clock::now();\n", "wall-clock"},
      {"time() in tests/serve", "tests/serve/t.cpp",
       "auto t = time(nullptr);\n", "wall-clock"},
      {"system_clock in tests/core", "tests/core/t.cpp",
       "auto t = std::chrono::system_clock::now();\n", "wall-clock"},
      {"steady_clock in tests/ml ok", "tests/ml/t.cpp",
       "auto t = std::chrono::steady_clock::now();\n", nullptr},
      {"waived wall clock in tests/serve", "tests/serve/t.cpp",
       "auto t = std::chrono::steady_clock::now();"
       "  // gsight-lint: allow(wall-clock)\n",
       nullptr},
      {"next_time not wall clock", "src/sim/x.cpp",
       "auto t = queue.next_time();\n", nullptr},
      {"ptr-keyed map in sim", "src/sim/x.hpp",
       "#pragma once\nstd::unordered_map<Instance*, int> m_;\n",
       "ptr-key-container"},
      {"ptr-keyed map outside sim ok", "src/ml/x.hpp",
       "#pragma once\nstd::unordered_map<Node*, int> m_;\n", nullptr},
      {"id-keyed map ok", "src/sim/x.hpp",
       "#pragma once\nstd::unordered_map<ExecId, int> m_;\n", nullptr},
      {"simtime equality", "src/sim/x.cpp",
       "SimTime when = 0.0;\nif (when == other) {}\n", "simtime-eq"},
      {"simtime tolerance ok", "src/sim/x.cpp",
       "SimTime when = 0.0;\nif (when <= other) {}\n", nullptr},
      {"allow waives", "src/sim/x.cpp",
       "SimTime when = 0.0;\n"
       "if (when == o) {}  // gsight-lint: allow(simtime-eq)\n",
       nullptr},
      {"analyze prefix waives lint rules too", "src/sim/x.cpp",
       "SimTime when = 0.0;\n"
       "if (when == o) {}  // gsight-analyze: allow(simtime-eq)\n",
       nullptr},
      {"allow is per-rule", "src/sim/x.cpp",
       "SimTime when = 0.0;\n"
       "if (when == o) {}  // gsight-lint: allow(banned-random)\n",
       "simtime-eq"},
      {"missing pragma once", "src/sim/x.hpp", "struct A {};\n",
       "pragma-once"},
      {"pragma once present", "src/sim/x.hpp", "#pragma once\nstruct A {};\n",
       nullptr},
      {"raw string literal stays inert", "src/foo.cpp",
       "const char* s = R\"(std::mt19937 time( ))\";\n", nullptr},
  };
  int failures = 0;
  for (const auto& c : cases) {
    std::vector<Violation> vs;
    check_file(c.rel, c.text, &vs);
    const bool ok =
        c.expect_rule == nullptr
            ? vs.empty()
            : std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
                return v.rule == c.expect_rule;
              });
    if (!ok) {
      ++failures;
      std::cout << "self-test FAIL: " << c.name << " (expected "
                << (c.expect_rule ? c.expect_rule : "clean") << ", got "
                << vs.size() << " violation(s)";
      for (const auto& v : vs) std::cout << " [" << v.rule << "]";
      std::cout << ")\n";
    }
  }
  std::cout << "gsight_lint --self-test: "
            << (sizeof(cases) / sizeof(cases[0])) << " cases, " << failures
            << " failure" << (failures == 1 ? "" : "s") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return self_test();
  if (argc != 2) {
    std::cerr << "usage: gsight_lint <repo-root> | --self-test\n";
    return 2;
  }
  const fs::path root = argv[1];
  const std::vector<std::string> roots = {"src", "tests", "bench"};
  std::vector<Violation> violations;
  std::size_t files_scanned = 0;

  for (const auto& top : roots) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      std::cerr << "gsight_lint: missing scan root " << dir << "\n";
      return 2;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "gsight_lint: cannot read " << path << "\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string rel =
          fs::relative(path, root).generic_string();
      check_file(rel, ss.str(), &violations);
      ++files_scanned;
    }
  }

  return gsight::analysis::report("gsight_lint", violations, files_scanned);
}
