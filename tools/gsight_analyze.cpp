// gsight_analyze — token-aware static analysis for the Gsight tree.
//
// Three passes over one shared lexed view of src/ (tools/analysis/):
//
//   layering         include-graph DAG enforcement (layer-back-edge,
//                    layer-lateral, layer-cycle)
//   determinism      unordered-container iteration feeding output sinks
//                    (unordered-iteration)
//   lock-discipline  mutex-owning classes with unannotated mutable
//                    members (unguarded-member)
//   hot-alloc        new / make_shared in files marked
//                    `// gsight-analyze: hot-path` (alloc-in-hot-path)
//
// Usage:
//   gsight_analyze [ROOT]                  analyse ROOT/src (default ".")
//   gsight_analyze --dump-graph FILE ROOT  also write the include graph
//                                          (JSON, gsight-include-graph/v1)
//   gsight_analyze --self-test             run every pass's seeded corpus
//   gsight_analyze --self-test=PASS        one corpus: layering,
//                                          determinism, lock-discipline or
//                                          hot-alloc
//
// Exit codes: 0 clean, 1 violations (or self-test failures), 2 usage or
// I/O error. Waivers: // gsight-analyze: allow(rule) on the finding line.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/determinism.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/hot_alloc.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/lock_discipline.hpp"

namespace fs = std::filesystem;
using namespace gsight::analysis;

namespace {

bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Load every source file under root/src into a SourceSet keyed by
/// repo-relative forward-slash paths. Returns false on I/O failure.
bool load_tree(const fs::path& root, SourceSet* set) {
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    std::cerr << "gsight_analyze: no src/ under " << root << "\n";
    return false;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && analyzable(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "gsight_analyze: cannot read " << p << "\n";
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string rel =
        fs::relative(p, root).generic_string();  // "src/…" with fwd slashes
    add_source(set, rel, text.str());
  }
  return true;
}

int run_self_tests(const std::string& which) {
  int failures = 0;
  if (which.empty() || which == "layering") {
    failures += include_graph_self_test();
  }
  if (which.empty() || which == "determinism") {
    failures += determinism_self_test();
  }
  if (which.empty() || which == "lock-discipline") {
    failures += lock_discipline_self_test();
  }
  if (which.empty() || which == "hot-alloc") {
    failures += hot_alloc_self_test();
  }
  if (!which.empty() && which != "layering" && which != "determinism" &&
      which != "lock-discipline" && which != "hot-alloc") {
    std::cerr << "gsight_analyze: unknown pass '" << which
              << "' (layering, determinism, lock-discipline, hot-alloc)\n";
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_path;
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return run_self_tests("");
    if (arg.rfind("--self-test=", 0) == 0) {
      return run_self_tests(arg.substr(12));
    }
    if (arg == "--dump-graph") {
      if (i + 1 >= argc) {
        std::cerr << "gsight_analyze: --dump-graph needs a file argument\n";
        return 2;
      }
      dump_path = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gsight_analyze [--self-test[=PASS]] "
                   "[--dump-graph FILE] [ROOT]\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "gsight_analyze: unknown option " << arg << "\n";
      return 2;
    }
    root = arg;
  }

  SourceSet files;
  if (!load_tree(root, &files)) return 2;

  std::vector<Violation> violations;
  const IncludeGraph graph = build_include_graph(files);
  check_layering(graph, files, &violations);
  check_determinism(files, &violations);
  check_lock_discipline(files, &violations);
  check_hot_alloc(files, &violations);

  if (!dump_path.empty()) {
    std::ofstream out(dump_path, std::ios::binary);
    if (!out) {
      std::cerr << "gsight_analyze: cannot write " << dump_path << "\n";
      return 2;
    }
    out << dump_graph_json(graph, files);
  }

  return report("gsight_analyze", violations, files.size());
}
