// bench_schema_check — validates BENCH_*.json run reports against the
// gsight-bench-report/v1 schema (src/obs/run_report.hpp). Standalone: no
// dependency on the gsight libraries, so the check.sh bench-smoke stage
// can build it next to the lint tool and validate reports produced by any
// bench binary.
//
// Usage:
//   bench_schema_check <report.json>...   validate each file; exit 1 on
//                                         the first failure
//   bench_schema_check --live <file>...   validate gsight-live/v1 NDJSON
//                                         streams (serve-bench --live)
//   bench_schema_check --self-test        run the built-in cases
//
// Report schema requirements enforced:
//   * top level is an object
//   * "schema" == "gsight-bench-report/v1"
//   * "bench" is a non-empty string
//   * "wall_time_s" is a finite number >= 0
//   * "results" is an array of objects, each with a non-empty string
//     "name", a finite number "value", and (optionally) a string "unit"
//   * "series" / "meta" / "metrics", when present, are object/object/array
//
// Live-stream (gsight-live/v1, src/obs/live_stream.hpp) requirements:
//   * every line is one JSON object with a string "type" and an integer
//     "seq" equal to its 0-based line index (strictly sequential)
//   * line 0 is a "hello" record with "schema" == "gsight-live/v1"
//   * "metric" records carry kind in {counter,gauge,histogram}, a
//     non-empty "name", and finite "ts_s"/"value"/"delta"
//   * "span" records carry a non-empty "name", a non-empty "ph", and a
//     finite "ts_s"; "mark" records a non-empty "name" and finite "ts_s"
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (reader side of src/obs/json.hpp's
// writer; deliberately independent so the validator cannot inherit a
// writer bug and declare its own output valid).
// ---------------------------------------------------------------------------

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  bool number_is_null = false;  // "null" in a numeric position
  std::string string;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return parse_number();
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape digit");
              }
            }
            // Reports only escape control characters, so non-ASCII
            // codepoints are passed through as '?' rather than UTF-8
            // encoded — the validator never needs their value.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      std::size_t used = 0;
      v.number = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("malformed number");
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

struct Failure {
  std::string what;
};

void check(bool ok, const std::string& what) {
  if (!ok) throw Failure{what};
}

void validate_report(const Value& doc) {
  check(doc.kind == Value::Kind::kObject, "top level is not an object");

  const Value* schema = doc.find("schema");
  check(schema != nullptr && schema->kind == Value::Kind::kString,
        "missing string field 'schema'");
  check(schema->string == "gsight-bench-report/v1",
        "unknown schema '" + schema->string + "'");

  const Value* bench = doc.find("bench");
  check(bench != nullptr && bench->kind == Value::Kind::kString &&
            !bench->string.empty(),
        "missing non-empty string field 'bench'");

  const Value* wall = doc.find("wall_time_s");
  check(wall != nullptr && wall->kind == Value::Kind::kNumber,
        "missing numeric field 'wall_time_s'");
  check(std::isfinite(wall->number) && wall->number >= 0.0,
        "'wall_time_s' must be finite and >= 0");

  const Value* results = doc.find("results");
  check(results != nullptr && results->kind == Value::Kind::kArray,
        "missing array field 'results'");
  for (std::size_t i = 0; i < results->items.size(); ++i) {
    const Value& row = results->items[i];
    const std::string at = "results[" + std::to_string(i) + "]";
    check(row.kind == Value::Kind::kObject, at + " is not an object");
    const Value* name = row.find("name");
    check(name != nullptr && name->kind == Value::Kind::kString &&
              !name->string.empty(),
          at + " missing non-empty string 'name'");
    const Value* value = row.find("value");
    check(value != nullptr && value->kind == Value::Kind::kNumber,
          at + " missing numeric 'value'");
    check(std::isfinite(value->number), at + " 'value' is not finite");
    if (const Value* unit = row.find("unit")) {
      check(unit->kind == Value::Kind::kString, at + " 'unit' is not a string");
    }
  }

  if (const Value* series = doc.find("series")) {
    check(series->kind == Value::Kind::kObject, "'series' is not an object");
  }
  if (const Value* meta = doc.find("meta")) {
    check(meta->kind == Value::Kind::kObject, "'meta' is not an object");
  }
  if (const Value* metrics = doc.find("metrics")) {
    check(metrics->kind == Value::Kind::kArray, "'metrics' is not an array");
  }
}

bool validate_text(const std::string& text, std::string* error) {
  try {
    const Value doc = Parser(text).parse();
    validate_report(doc);
    return true;
  } catch (const Failure& f) {
    *error = f.what;
    return false;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

// ---------------------------------------------------------------------------
// gsight-live/v1 NDJSON streams
// ---------------------------------------------------------------------------

void check_finite_number(const Value& record, const char* field,
                         const std::string& at) {
  const Value* v = record.find(field);
  check(v != nullptr && v->kind == Value::Kind::kNumber,
        at + " missing numeric '" + field + "'");
  check(std::isfinite(v->number),
        at + " '" + std::string(field) + "' is not finite");
}

void check_nonempty_string(const Value& record, const char* field,
                           const std::string& at) {
  const Value* v = record.find(field);
  check(v != nullptr && v->kind == Value::Kind::kString && !v->string.empty(),
        at + " missing non-empty string '" + field + "'");
}

void validate_live_record(const Value& record, std::size_t index) {
  const std::string at = "line " + std::to_string(index);
  check(record.kind == Value::Kind::kObject, at + " is not an object");

  const Value* type = record.find("type");
  check(type != nullptr && type->kind == Value::Kind::kString,
        at + " missing string field 'type'");

  // seq is assigned under the sink's lock: strictly sequential from 0, so
  // it must equal the line index — any gap means records were dropped.
  const Value* seq = record.find("seq");
  check(seq != nullptr && seq->kind == Value::Kind::kNumber,
        at + " missing numeric field 'seq'");
  check(seq->number == static_cast<double>(index),
        at + " 'seq' is " + std::to_string(seq->number) +
            ", expected the line index");

  if (index == 0) {
    check(type->string == "hello", "line 0 must be a 'hello' record");
    const Value* schema = record.find("schema");
    check(schema != nullptr && schema->kind == Value::Kind::kString,
          "hello record missing string field 'schema'");
    check(schema->string == "gsight-live/v1",
          "unknown live schema '" + schema->string + "'");
    check_nonempty_string(record, "source", at);
    return;
  }
  check(type->string != "hello", at + " duplicate 'hello' record");

  if (type->string == "metric") {
    const Value* kind = record.find("kind");
    check(kind != nullptr && kind->kind == Value::Kind::kString &&
              (kind->string == "counter" || kind->string == "gauge" ||
               kind->string == "histogram"),
          at + " metric 'kind' must be counter/gauge/histogram");
    check_nonempty_string(record, "name", at);
    check_finite_number(record, "ts_s", at);
    check_finite_number(record, "value", at);
    check_finite_number(record, "delta", at);
  } else if (type->string == "span") {
    check_nonempty_string(record, "name", at);
    check_nonempty_string(record, "ph", at);
    check_finite_number(record, "ts_s", at);
  } else if (type->string == "mark") {
    check_nonempty_string(record, "name", at);
    check_finite_number(record, "ts_s", at);
  } else {
    throw Failure{at + " unknown record type '" + type->string + "'"};
  }
}

bool validate_live_text(const std::string& text, std::string* error) {
  try {
    std::size_t index = 0;
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string line = text.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      validate_live_record(Parser(line).parse(), index);
      ++index;
    }
    check(index > 0, "empty stream (no records)");
    return true;
  } catch (const Failure& f) {
    *error = f.what;
    return false;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

int validate_file(const char* path, bool live) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_schema_check: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  const bool ok = live ? validate_live_text(ss.str(), &error)
                       : validate_text(ss.str(), &error);
  if (!ok) {
    std::fprintf(stderr, "bench_schema_check: %s: %s\n", path, error.c_str());
    return 1;
  }
  std::printf("bench_schema_check: %s: OK\n", path);
  return 0;
}

int self_test() {
  struct Case {
    const char* name;
    const char* text;
    bool ok;
  };
  const Case cases[] = {
      {"minimal valid",
       R"({"schema":"gsight-bench-report/v1","bench":"x","wall_time_s":0,)"
       R"("results":[]})",
       true},
      {"full valid",
       R"({"schema":"gsight-bench-report/v1","bench":"fig14","wall_time_s":1.5,)"
       R"("results":[{"name":"a","value":1.0,"unit":"ms"},{"name":"b","value":-2}],)"
       R"("series":{"curve":[1,2,3]},"metrics":[{"name":"m"}],"meta":{"k":"v"}})",
       true},
      {"wrong schema tag",
       R"({"schema":"other/v9","bench":"x","wall_time_s":0,"results":[]})",
       false},
      {"missing bench",
       R"({"schema":"gsight-bench-report/v1","wall_time_s":0,"results":[]})",
       false},
      {"negative wall time",
       R"({"schema":"gsight-bench-report/v1","bench":"x","wall_time_s":-1,)"
       R"("results":[]})",
       false},
      {"result without value",
       R"({"schema":"gsight-bench-report/v1","bench":"x","wall_time_s":0,)"
       R"("results":[{"name":"a"}]})",
       false},
      {"null result value",
       R"({"schema":"gsight-bench-report/v1","bench":"x","wall_time_s":0,)"
       R"("results":[{"name":"a","value":null}]})",
       false},
      {"results not an array",
       R"({"schema":"gsight-bench-report/v1","bench":"x","wall_time_s":0,)"
       R"("results":{}})",
       false},
      {"string escapes in names",
       R"({"schema":"gsight-bench-report/v1","bench":"q\"\\u0041","wall_time_s":0,)"
       R"("results":[{"name":"tab\tname","value":3e-5}]})",
       true},
      {"truncated document",
       R"({"schema":"gsight-bench-report/v1","bench":"x")", false},
      {"not json at all", "hello", false},
  };
  const Case live_cases[] = {
      {"live minimal valid",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n",
       true},
      {"live full valid",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t",)"
       R"("meta":{"k":"v"}})"
       "\n"
       R"({"type":"metric","seq":1,"ts_s":0.5,"kind":"counter",)"
       R"("name":"fleet.submitted","labels":"","value":3,"delta":3})"
       "\n"
       R"({"type":"span","seq":2,"ts_s":0.6,"ph":"X","name":"poll",)"
       R"("cat":"serve","dur_s":0.01})"
       "\n"
       R"({"type":"mark","seq":3,"ts_s":0.7,"name":"fleet.drain",)"
       R"("args":{"replica":"1"}})"
       "\n",
       true},
      {"live empty stream", "", false},
      {"live missing hello",
       R"({"type":"mark","seq":0,"ts_s":0,"name":"x"})"
       "\n",
       false},
      {"live wrong schema",
       R"({"schema":"gsight-live/v9","type":"hello","seq":0,"source":"t"})"
       "\n",
       false},
      {"live seq gap",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"type":"mark","seq":2,"ts_s":0,"name":"x"})"
       "\n",
       false},
      {"live duplicate hello",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"schema":"gsight-live/v1","type":"hello","seq":1,"source":"t"})"
       "\n",
       false},
      {"live bad metric kind",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"type":"metric","seq":1,"ts_s":0,"kind":"meter","name":"m",)"
       R"("value":1,"delta":1})"
       "\n",
       false},
      {"live metric missing delta",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"type":"metric","seq":1,"ts_s":0,"kind":"gauge","name":"m",)"
       R"("value":1})"
       "\n",
       false},
      {"live non-finite ts",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"type":"mark","seq":1,"ts_s":null,"name":"x"})"
       "\n",
       false},
      {"live span without ph",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"type":"span","seq":1,"ts_s":0,"name":"x"})"
       "\n",
       false},
      {"live unknown type",
       R"({"schema":"gsight-live/v1","type":"hello","seq":0,"source":"t"})"
       "\n"
       R"({"type":"blob","seq":1,"ts_s":0,"name":"x"})"
       "\n",
       false},
  };
  int failures = 0;
  for (const auto& c : cases) {
    std::string error;
    const bool ok = validate_text(c.text, &error);
    if (ok != c.ok) {
      std::fprintf(stderr, "self-test FAIL: %s (expected %s, got %s%s%s)\n",
                   c.name, c.ok ? "valid" : "invalid",
                   ok ? "valid" : "invalid", ok ? "" : ": ",
                   ok ? "" : error.c_str());
      ++failures;
    }
  }
  for (const auto& c : live_cases) {
    std::string error;
    const bool ok = validate_live_text(c.text, &error);
    if (ok != c.ok) {
      std::fprintf(stderr, "self-test FAIL: %s (expected %s, got %s%s%s)\n",
                   c.name, c.ok ? "valid" : "invalid",
                   ok ? "valid" : "invalid", ok ? "" : ": ",
                   ok ? "" : error.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf(
        "bench_schema_check self-test: all %zu cases passed\n",
        sizeof(cases) / sizeof(cases[0]) +
            sizeof(live_cases) / sizeof(live_cases[0]));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: bench_schema_check <report.json>... | "
                 "--live <stream.ndjson>... | --self-test\n");
    return 2;
  }
  if (std::strcmp(argv[1], "--self-test") == 0) return self_test();
  bool live = false;
  int rc = 0;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
      continue;
    }
    rc |= validate_file(argv[i], live);
    ++files;
  }
  if (files == 0) {
    std::fprintf(stderr, "bench_schema_check: no input files\n");
    return 2;
  }
  return rc;
}
