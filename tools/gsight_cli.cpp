// gsight — command-line front end for the library's main workflows.
//
//   gsight list                         workloads in the built-in suite
//   gsight profile <app> [qps] [out]    solo-profile an app (optionally save)
//   gsight train <store> <model-out>    build a training stream from the
//                                       suite and fit + persist an IRFR
//   gsight predict <store> <model> <target> <corunner> <same|apart>
//                                       what-if: predict target IPC with the
//                                       corunner colocated or isolated
//   gsight campaign [options]           deterministic parallel scenario
//                                       campaign (see --help below); the
//                                       sample stream is bit-identical for
//                                       any --threads value
//   gsight serve-bench [options]        drive the online prediction service
//                                       (micro-batching + hot swap) under
//                                       synthetic load; emits
//                                       BENCH_serve.json. --threads 0 runs
//                                       the deterministic synchronous twin.
//                                       --fleet N drives a routed
//                                       PredictionFleet instead (emits
//                                       BENCH_serve_fleet.json) and --live
//                                       streams gsight-live/v1 NDJSON
//   gsight clone-bench [options]        sweep clone factor x interference
//                                       intensity x service discipline and
//                                       emit the latency-vs-cloning frontier
//                                       (BENCH_cloning_frontier.json)
//   gsight tail <file> [--follow]       pretty-print a gsight-live/v1
//                                       NDJSON stream (the --live output)
//   gsight demo                         30-second end-to-end tour
//
// Everything runs on the simulator; profiles/models persist via the text
// formats in profiling/profile_io.hpp and ml/forest_io.hpp. GSIGHT_THREADS
// caps campaign fan-out when --threads is not given (0/unset = hardware).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "ml/forest_io.hpp"
#include "obs/live_stream.hpp"
#include "obs/run_report.hpp"
#include "profiling/profile_io.hpp"
#include "sched/cloning_frontier.hpp"
#include "serve/fleet.hpp"
#include "serve/load_driver.hpp"
#include "serve/service.hpp"
#include "sim/sharded_engine.hpp"
#include "stats/summary.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace gsight;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gsight list\n"
               "  gsight profile <app> [qps] [store-out]\n"
               "  gsight train <store-in> <model-out> [scenarios]\n"
               "  gsight predict <store-in> <model-in> <target-key> "
               "<corunner-key> <same|apart>\n"
               "  gsight campaign [--threads N] [--seed S] [--count N]\n"
               "                  [--qos ipc|lat|jct] [--cls ls+ls|ls+sc|sc+sc]\n"
               "                  [--dump FILE]\n"
               "  gsight campaign --shards N [--clusters C] [--servers S]\n"
               "                  [--horizon T] [--threads N] [--seed S]\n"
               "                  [--remote F] [--clone-factor D]\n"
               "                  [--clone-handoffs] [--ps] [--dump FILE]\n"
               "                  (sharded simulation; the digest is\n"
               "                  bit-identical for any --shards and\n"
               "                  --threads, clones and cancellations\n"
               "                  included)\n"
               "  gsight clone-bench [--factors 1,2,3] [--levels 0,3]\n"
               "                  [--reps N] [--servers S] [--qps HZ]\n"
               "                  [--duration T] [--sync] [--threads N]\n"
               "                  [--seed S] [--out DIR]\n"
               "                  (latency-vs-cloning frontier ->\n"
               "                  BENCH_cloning_frontier.json)\n"
               "  gsight serve-bench [--threads N] [--requests N] [--rate HZ]\n"
               "                  [--dim D] [--batch N] [--linger-us U]\n"
               "                  [--queue N] [--warm N] [--observe-every N]\n"
               "                  [--mode open|closed] [--clients N]\n"
               "                  [--seed S] [--out DIR]\n"
               "  gsight serve-bench --fleet N [--router hash|least]\n"
               "                  [--vnodes N] [--drain R@D[:A]]...\n"
               "                  [--live FILE] [--live-every N]\n"
               "                  (+ the single-service flags above; drains\n"
               "                  a replica before request D, re-adds it\n"
               "                  before request A)\n"
               "  gsight tail <file> [--follow]\n"
               "  gsight demo\n");
  return 2;
}

/// Campaign fan-out from GSIGHT_THREADS (0/unset = all hardware threads).
std::size_t env_threads() {
  if (const char* v = std::getenv("GSIGHT_THREADS")) {
    return static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
  }
  return 0;
}

prof::SoloProfilerConfig profiler_config() {
  prof::SoloProfilerConfig cfg;
  cfg.server = sim::ServerConfig::socket();
  cfg.ls_profile_s = 25.0;
  return cfg;
}

int cmd_list() {
  std::printf("%-24s %-4s %10s %12s\n", "name", "cls", "functions",
              "solo(s)");
  for (const auto& app : wl::full_suite()) {
    std::printf("%-24s %-4s %10zu %12.3f\n", app.name.c_str(),
                wl::to_string(app.cls).c_str(), app.function_count(),
                app.total_solo_s());
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string name = argv[0];
  const double qps = argc >= 2 ? std::atof(argv[1]) : 0.0;
  const auto app = wl::by_name(name);
  prof::ProfileStore store;
  const auto key = core::ensure_profile(store, app, qps, profiler_config());
  const auto& profile = store.get(key);
  std::printf("profiled %s: %zu functions", key.c_str(),
              profile.functions.size());
  if (app.cls == wl::WorkloadClass::kLatencySensitive) {
    std::printf(", solo p99 %.2f ms, mean IPC %.3f\n",
                profile.solo_e2e_p99_s * 1e3, profile.solo_mean_ipc);
  } else {
    std::printf(", solo JCT %.1f s\n", profile.solo_jct_s);
  }
  for (const auto& fn : profile.functions) {
    std::printf("  %-24s solo %.4gs  ipc %.3f  %.1f cores\n",
                fn.fn_name.c_str(), fn.solo_duration_s, fn.solo_ipc,
                fn.demand.cores);
  }
  if (argc >= 3) {
    prof::save_store(store, argv[2]);
    std::printf("store written to %s\n", argv[2]);
  }
  return 0;
}

int cmd_train(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string store_path = argv[0];
  const std::string model_path = argv[1];
  const std::size_t scenarios = argc >= 3
                                    ? static_cast<std::size_t>(
                                          std::atol(argv[2]))
                                    : 120;

  prof::ProfileStore store;
  core::BuilderConfig cfg;
  cfg.runner.servers = 8;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.encoder.servers = 8;
  cfg.profiler = profiler_config();
  core::DatasetBuilder builder(&store, cfg, /*seed=*/2026);
  std::printf("building %zu LS+SC/BG scenarios (profiles on demand)...\n",
              scenarios);
  core::BuildRequest request;
  request.cls = core::ColocationClass::kLsScBg;
  request.qos = core::QosKind::kIpc;
  request.count = scenarios;
  request.campaign.threads = env_threads();
  const auto stream = builder.build(request);

  ml::IncrementalForest model(core::deployed_irfr_config(), 1);
  ml::Dataset train(builder.encoder().dimension());
  for (const auto& s : stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  model.partial_fit(train);
  std::printf("trained IRFR on %zu samples from %zu scenarios\n",
              train.size(), stream.size());

  prof::save_store(store, store_path);
  ml::save_incremental_forest(model, model_path);
  std::printf("store -> %s\nmodel -> %s\n", store_path.c_str(),
              model_path.c_str());
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto store = prof::load_store(argv[0]);
  auto model = ml::load_incremental_forest(argv[1]);
  const auto& target = store.get(argv[2]);
  const auto& corunner = store.get(argv[3]);
  const bool same = argc >= 5 && std::strcmp(argv[4], "apart") != 0;

  core::EncoderConfig ec;
  ec.servers = 8;
  const core::Encoder encoder(ec);
  core::Scenario scenario;
  scenario.servers = 8;
  core::WorkloadDeployment t;
  t.profile = &target;
  for (std::size_t i = 0; i < target.functions.size(); ++i) {
    t.fn_to_server.push_back(i % 4);  // spread over the first 4 sockets
  }
  core::WorkloadDeployment c;
  c.profile = &corunner;
  c.fn_to_server.assign(corunner.functions.size(), same ? 0 : 7);
  c.lifetime_s = corunner.solo_jct_s;
  scenario.workloads = {t, c};

  const double ipc = model.predict(encoder.encode(scenario));
  std::printf("predicted IPC of %s with %s %s: %.3f (solo %.3f)\n", argv[2],
              argv[3], same ? "colocated" : "isolated", ipc,
              target.solo_mean_ipc);
  return 0;
}

int cmd_demo() {
  std::printf("== gsight demo: profile -> observe -> predict ==\n");
  prof::ProfileStore store;
  core::BuilderConfig cfg;
  cfg.runner.servers = 4;
  cfg.encoder.servers = 4;
  cfg.encoder.max_workloads = 4;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.profiler = profiler_config();
  cfg.profiler.ls_profile_s = 15.0;
  cfg.ls_qps_levels = {40.0};
  core::DatasetBuilder builder(&store, cfg, 7);

  core::PredictorConfig pc;
  pc.encoder = cfg.encoder;
  core::GsightPredictor predictor(pc);
  core::BuildRequest request;
  request.cls = core::ColocationClass::kLsScBg;
  request.qos = core::QosKind::kIpc;
  request.count = 30;
  request.campaign.threads = env_threads();
  const auto stream = builder.build(request);
  ml::Dataset train(predictor.encoder().dimension());
  for (const auto& s : stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  predictor.train(train);
  std::printf("trained on %zu samples (%zu scenarios)\n", train.size(),
              stream.size());
  // Prequential check on a few fresh scenarios.
  request.count = 6;
  const auto fresh = builder.build(request);
  for (const auto& s : fresh) {
    const double truth = stats::mean(s.labels);
    const double pred = predictor.predict(s.outcome.scenario);
    std::printf("  %-18s measured IPC %.3f predicted %.3f (%.1f%% error)\n",
                s.outcome.scenario.workloads[0].profile->app_name.c_str(),
                truth, pred, 100.0 * std::abs(pred - truth) / truth);
  }
  return 0;
}

/// Byte-stable hexfloat dump of a campaign's sample stream. check.sh
/// compares dumps across thread counts: equal files prove the parallel
/// fan-out is bit-identical to the serial run.
bool dump_samples(const std::vector<core::ScenarioSamples>& samples,
                  const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "gsight-campaign-dump/v1 samples=%zu\n", samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::fprintf(f, "scenario %zu features=%zu labels=%zu\n", i,
                 s.features.size(), s.labels.size());
    for (double v : s.features) std::fprintf(f, "f %a\n", v);
    for (double v : s.labels) std::fprintf(f, "l %a\n", v);
    std::fprintf(f, "o %a %a %a %d\n", s.outcome.mean_ipc,
                 s.outcome.p99_latency_s, s.outcome.jct_s,
                 s.outcome.completed ? 1 : 0);
    for (double v : s.outcome.window_ipc) std::fprintf(f, "wi %a\n", v);
    for (double v : s.outcome.window_p99) std::fprintf(f, "wp %a\n", v);
    for (const auto& [ipc, p99] : s.outcome.window_ipc_p99) {
      std::fprintf(f, "wx %a %a\n", ipc, p99);
    }
  }
  std::fclose(f);
  return true;
}

/// Sharded-simulation mode of `gsight campaign` (--shards): advance a
/// multi-cell estate under the synthetic diurnal trace and report the
/// aggregate event rate. The state digest written by --dump is
/// byte-identical for any lane count and any thread count — check.sh's
/// shard-equivalence stage compares those dumps the same way the dataset
/// campaign compares sample streams.
struct ShardedCloneOptions {
  std::size_t clone_factor = 1;
  bool clone_handoffs = false;
  double remote_fraction = -1.0;  ///< < 0 keeps the config default
  bool processor_sharing = false;
};

int cmd_campaign_sharded(std::size_t lanes, std::size_t threads,
                         std::uint64_t seed, std::size_t clusters,
                         std::size_t servers, double horizon,
                         const std::string& dump_path,
                         const ShardedCloneOptions& clone) {
  sim::ShardedEngineConfig cfg;
  cfg.servers = servers;
  cfg.server = sim::ServerConfig::socket();
  if (clone.processor_sharing) {
    cfg.server.discipline = sim::ServiceDiscipline::kProcessorSharing;
  }
  cfg.seed = seed;
  cfg.topology.clusters = clusters;
  cfg.topology.shards = lanes;
  cfg.threads = threads == 0 ? 1 : threads;
  cfg.trace.base_qps = 40.0;
  cfg.gateway.clone.factor = clone.clone_factor;
  cfg.clone_handoffs = clone.clone_handoffs;
  if (clone.remote_fraction >= 0.0) {
    cfg.remote_fraction = clone.remote_fraction;
  }
  sim::ShardedEngine engine(cfg);
  engine.deploy_default_load();
  std::printf("sharded campaign: %zu cells x %zu servers, %zu lanes, "
              "%zu threads, seed %llu, horizon %.0fs\n",
              engine.shard_count(), servers, engine.lanes(), cfg.threads,
              static_cast<unsigned long long>(seed), horizon);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run_until(horizon);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto events = engine.events_executed();
  std::printf("ran %llu epochs, %llu events, %llu cross-cell messages "
              "(%.0f events/s wall)\n",
              static_cast<unsigned long long>(engine.epochs_run()),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(engine.messages_exchanged()),
              wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
  if (!dump_path.empty()) {
    std::FILE* f = std::fopen(dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", dump_path.c_str());
      return 1;
    }
    const std::string digest = engine.merged_digest();
    std::fprintf(f, "gsight-shard-dump/v1 cells=%zu\n", engine.shard_count());
    std::fwrite(digest.data(), 1, digest.size(), f);
    std::fclose(f);
    std::printf("state digest dumped to %s\n", dump_path.c_str());
  }
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  std::size_t threads = env_threads();
  std::uint64_t seed = 2027;
  std::size_t count = 8;
  core::QosKind qos = core::QosKind::kIpc;
  core::ColocationClass cls = core::ColocationClass::kLsScBg;
  std::string dump_path;
  bool sharded = false;
  std::size_t shards = 0;
  std::size_t clusters = 8;
  std::size_t servers = 32;
  double horizon = 120.0;
  ShardedCloneOptions clone;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--threads" && value != nullptr) {
      threads = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--count" && value != nullptr) {
      count = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--qos" && value != nullptr) {
      const std::string v = value;
      if (v == "ipc") {
        qos = core::QosKind::kIpc;
      } else if (v == "lat") {
        qos = core::QosKind::kTailLatency;
      } else if (v == "jct") {
        qos = core::QosKind::kJct;
      } else {
        return usage();
      }
      ++i;
    } else if (arg == "--cls" && value != nullptr) {
      const std::string v = value;
      if (v == "ls+ls") {
        cls = core::ColocationClass::kLsLs;
      } else if (v == "ls+sc") {
        cls = core::ColocationClass::kLsScBg;
      } else if (v == "sc+sc") {
        cls = core::ColocationClass::kScScBg;
      } else {
        return usage();
      }
      ++i;
    } else if (arg == "--dump" && value != nullptr) {
      dump_path = value;
      ++i;
    } else if (arg == "--shards" && value != nullptr) {
      sharded = true;
      shards = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--clusters" && value != nullptr) {
      clusters = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--servers" && value != nullptr) {
      servers = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--horizon" && value != nullptr) {
      horizon = std::atof(value);
      ++i;
    } else if (arg == "--clone-factor" && value != nullptr) {
      clone.clone_factor =
          static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--clone-handoffs") {
      clone.clone_handoffs = true;
    } else if (arg == "--remote" && value != nullptr) {
      clone.remote_fraction = std::atof(value);
      ++i;
    } else if (arg == "--ps") {
      clone.processor_sharing = true;
    } else {
      return usage();
    }
  }
  if (sharded) {
    return cmd_campaign_sharded(shards, threads, seed, clusters, servers,
                                horizon, dump_path, clone);
  }
  if (clone.clone_factor > 1 || clone.clone_handoffs ||
      clone.remote_fraction >= 0.0 || clone.processor_sharing) {
    std::fprintf(stderr,
                 "error: --clone-factor/--clone-handoffs/--remote/--ps "
                 "require --shards\n");
    return usage();
  }

  // Small, fast geometry (the demo's): the subcommand exists to exercise
  // and verify the deterministic fan-out, not to build paper-scale data.
  prof::ProfileStore store;
  core::BuilderConfig cfg;
  cfg.runner.servers = 4;
  cfg.encoder.servers = 4;
  cfg.encoder.max_workloads = 4;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.profiler = profiler_config();
  cfg.profiler.ls_profile_s = 15.0;
  cfg.ls_qps_levels = {40.0};
  core::DatasetBuilder builder(&store, cfg, seed);

  core::BuildRequest request;
  request.cls = cls;
  request.qos = qos;
  request.count = count;
  request.campaign.threads = threads;
  std::printf("campaign: %zu %s scenarios, seed %llu, threads %zu%s\n",
              count, core::to_string(cls),
              static_cast<unsigned long long>(seed), threads,
              threads == 0 ? " (hardware)" : "");
  const auto samples = builder.build(request);

  std::size_t label_count = 0;
  stats::Running label_stats;
  for (const auto& s : samples) {
    label_count += s.labels.size();
    for (double l : s.labels) label_stats.add(l);
  }
  std::printf("built %zu labelled scenarios, %zu label windows, mean label "
              "%.4f\n",
              samples.size(), label_count, label_stats.mean());
  if (!dump_path.empty()) {
    if (!dump_samples(samples, dump_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", dump_path.c_str());
      return 1;
    }
    std::printf("sample stream dumped to %s\n", dump_path.c_str());
  }
  return 0;
}

/// `gsight clone-bench` — sweep clone factor × interference intensity ×
/// service discipline and emit the latency-vs-cloning frontier
/// (BENCH_cloning_frontier.json). The human-readable table prints one row
/// per cell: p99 falling with d on quiet servers and rising with d under
/// heavy antagonists is the paper-replication headline.
int cmd_clone_bench(int argc, char** argv) {
  sched::CloningFrontierConfig cfg;
  cfg.campaign.threads = env_threads();
  std::string out_dir = ".";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--threads" && value != nullptr) {
      cfg.campaign.threads =
          static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      cfg.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--reps" && value != nullptr) {
      cfg.replications =
          static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--servers" && value != nullptr) {
      cfg.servers = static_cast<std::size_t>(std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--qps" && value != nullptr) {
      cfg.qps = std::atof(value);
      ++i;
    } else if (arg == "--duration" && value != nullptr) {
      cfg.duration_s = std::atof(value);
      ++i;
    } else if (arg == "--factors" && value != nullptr) {
      cfg.clone_factors.clear();
      for (const char* p = value; *p != '\0';) {
        char* end = nullptr;
        cfg.clone_factors.push_back(
            static_cast<std::size_t>(std::strtoul(p, &end, 10)));
        if (end == p) return usage();
        p = *end == ',' ? end + 1 : end;
      }
      ++i;
    } else if (arg == "--levels" && value != nullptr) {
      cfg.interference_levels.clear();
      for (const char* p = value; *p != '\0';) {
        char* end = nullptr;
        cfg.interference_levels.push_back(
            static_cast<std::size_t>(std::strtoul(p, &end, 10)));
        if (end == p) return usage();
        p = *end == ',' ? end + 1 : end;
      }
      ++i;
    } else if (arg == "--sync") {
      cfg.policy = sim::CloneConfig::Policy::kSynchronized;
    } else if (arg == "--out" && value != nullptr) {
      out_dir = value;
      ++i;
    } else {
      return usage();
    }
  }

  std::printf("clone-bench: %zu servers, %.0f qps, %zu reps/cell, seed %llu, "
              "threads %zu%s\n",
              cfg.servers, cfg.qps, cfg.replications,
              static_cast<unsigned long long>(cfg.seed), cfg.campaign.threads,
              cfg.campaign.threads == 0 ? " (hardware)" : "");
  const auto t0 = std::chrono::steady_clock::now();
  const sched::CloningFrontierResult result = sched::run_cloning_frontier(cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("%-10s %4s %3s %10s %10s %10s %10s %10s\n", "discipline", "bg",
              "d", "p50(ms)", "p99(ms)", "p999(ms)", "done", "cancelled");
  for (const auto& c : result.cells) {
    std::printf("%-10s %4zu %3zu %10.2f %10.2f %10.2f %10.0f %10.0f\n",
                sched::discipline_label(c.discipline).c_str(), c.antagonists,
                c.clone_factor, c.p50.mean * 1e3, c.p99.mean * 1e3,
                c.p999.mean * 1e3, c.completed.mean, c.clones_cancelled.mean);
  }

  obs::RunReport report("cloning_frontier");
  result.write_into(report);
  report.set_meta("servers", std::to_string(cfg.servers));
  report.set_meta("qps", std::to_string(cfg.qps));
  report.set_meta("replications", std::to_string(cfg.replications));
  report.set_meta("seed", std::to_string(cfg.seed));
  report.set_meta("policy",
                  cfg.policy == sim::CloneConfig::Policy::kSynchronized
                      ? "synchronized"
                      : "independent");
  report.set_wall_time_s(wall);
  const std::string path = report.write(out_dir);
  if (path.empty()) {
    std::fprintf(stderr, "error: cannot write report to %s\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf("report -> %s (%.1fs wall)\n", path.c_str(), wall);
  return 0;
}

/// Parse one --drain spec "R@D" or "R@D:A" (drain replica R before
/// request D, re-add before request A). Returns false on syntax error.
bool parse_drain_spec(const char* spec, serve::DrainStep* step) {
  char* end = nullptr;
  step->replica = std::strtoul(spec, &end, 10);
  if (end == spec || *end != '@') return false;
  const char* p = end + 1;
  step->drain_at = std::strtoul(p, &end, 10);
  if (end == p) return false;
  step->readd_at = 0;
  if (*end == ':') {
    p = end + 1;
    step->readd_at = std::strtoul(p, &end, 10);
    if (end == p) return false;
  }
  return *end == '\0';
}

/// Fleet variant of serve-bench: N replicas behind a Router, central
/// training with fan-out publishing, an optional mid-run drain schedule
/// and an optional gsight-live/v1 NDJSON stream. Emits
/// BENCH_serve_fleet.json; the conservation fields (lost must be 0) and
/// the live stream are what check.sh's fleet twin-run stage compares.
int cmd_serve_fleet(serve::FleetRequest fr, serve::DriverRequest lc,
                    std::size_t warm_rows, const std::string& out_dir,
                    const std::string& live_path) {
  const auto t0 = std::chrono::steady_clock::now();

  ml::IncrementalForest model(core::deployed_irfr_config(), lc.seed);
  if (warm_rows > 0) {
    stats::Rng rng(lc.seed ^ 0x5EEDF00DULL);
    ml::Dataset warm(fr.service.feature_dim);
    std::vector<double> row(fr.service.feature_dim);
    for (std::size_t i = 0; i < warm_rows; ++i) {
      for (auto& v : row) v = rng.uniform();
      warm.add(row, serve::LoadDriver::label_of(row));
    }
    model.partial_fit(warm);
  }

  serve::PredictionFleet fleet(fr, std::move(model));

  std::ofstream live_os;
  std::unique_ptr<obs::LiveStreamSink> sink;
  if (!live_path.empty()) {
    live_os.open(live_path);
    if (!live_os) {
      std::fprintf(stderr, "error: cannot write %s\n", live_path.c_str());
      return 1;
    }
    sink = std::make_unique<obs::LiveStreamSink>(live_os);
    sink->hello("serve-bench",
                {{"replicas", std::to_string(fr.replicas)},
                 {"router", serve::router_policy_name(fr.router)},
                 {"worker_threads", std::to_string(fr.service.worker_threads)},
                 {"requests", std::to_string(lc.requests)},
                 {"seed", std::to_string(lc.seed)}});
    fleet.set_live_sink(sink.get());
    if (lc.live_every == 0) lc.live_every = 256;
  }

  serve::LoadDriver driver(lc);
  serve::LoadOutcome outcome;
  fleet.start();
  if (fr.service.worker_threads == 0) {
    outcome = driver.run_deterministic(fleet);
  } else {
    outcome = driver.run_threaded(fleet);
  }
  fleet.stop();
  const serve::FleetStats fs = fleet.stats();

  obs::RunReport report("serve_fleet");
  report.add_result("requests", static_cast<double>(outcome.submitted));
  report.add_result("completed", static_cast<double>(outcome.completed));
  report.add_result("shed", static_cast<double>(outcome.shed));
  // Conservation across routing, shedding and any mid-run re-shard:
  // every submission either completed or was shed, exactly once. The
  // fleet twin-run gate asserts this is 0.
  report.add_result("lost",
                    static_cast<double>(outcome.submitted - outcome.completed -
                                        outcome.shed));
  report.add_result("throughput", outcome.throughput_rps, "req/s");
  report.add_result("latency_p50", outcome.latency_p50_us, "us");
  report.add_result("latency_p95", outcome.latency_p95_us, "us");
  report.add_result("latency_p99", outcome.latency_p99_us, "us");
  report.add_result("latency_mean", outcome.latency_mean_us, "us");
  report.add_result("latency_max", outcome.latency_max_us, "us");
  report.add_result("train_rounds", static_cast<double>(fs.train_rounds));
  report.add_result("publishes", static_cast<double>(fs.publishes));
  report.add_result("latest_version", static_cast<double>(fs.latest_version));
  report.add_result("watermark", static_cast<double>(fs.watermark));
  report.add_result("stale_replicas", static_cast<double>(fs.stale_replicas));
  report.add_result("active_replicas",
                    static_cast<double>(fs.active_replicas));
  report.add_result("drains", static_cast<double>(fs.drains));
  report.add_result("readds", static_cast<double>(fs.readds));
  obs::Json routed = obs::Json::array();
  for (std::uint64_t c : fs.routed) routed.push_back(static_cast<double>(c));
  report.add_series("replica_routed", std::move(routed));
  obs::Json versions = obs::Json::array();
  for (std::uint64_t v : fs.replica_versions) {
    versions.push_back(static_cast<double>(v));
  }
  report.add_series("replica_versions", std::move(versions));
  obs::MetricsRegistry registry;
  fleet.export_metrics(registry);
  report.attach_metrics(registry);
  report.set_meta("mode", lc.mode == serve::DriverRequest::Mode::kOpenLoop
                              ? "open"
                              : "closed");
  report.set_meta("replicas", std::to_string(fr.replicas));
  report.set_meta("router", serve::router_policy_name(fr.router));
  report.set_meta("worker_threads",
                  std::to_string(fr.service.worker_threads));
  report.set_meta("feature_dim", std::to_string(fr.service.feature_dim));
  report.set_meta("seed", std::to_string(lc.seed));
  report.set_wall_time_s(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());

  const std::string path = report.write(out_dir);
  if (path.empty()) {
    std::fprintf(stderr, "error: cannot write report to %s\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf(
      "serve-fleet: %zu replicas (%s), %zu requests (%zu completed, %zu "
      "shed, %zu lost), %.0f req/s, p50/p95/p99 %.1f/%.1f/%.1f us, "
      "watermark v%llu (latest v%llu, %zu stale), %llu drains / %llu "
      "re-adds\nreport -> %s\n",
      fr.replicas, serve::router_policy_name(fr.router), outcome.submitted,
      outcome.completed, outcome.shed,
      outcome.submitted - outcome.completed - outcome.shed,
      outcome.throughput_rps, outcome.latency_p50_us, outcome.latency_p95_us,
      outcome.latency_p99_us,
      static_cast<unsigned long long>(fs.watermark),
      static_cast<unsigned long long>(fs.latest_version), fs.stale_replicas,
      static_cast<unsigned long long>(fs.drains),
      static_cast<unsigned long long>(fs.readds), path.c_str());
  if (sink) {
    std::printf("live stream -> %s (%llu records)\n", live_path.c_str(),
                static_cast<unsigned long long>(sink->records()));
  }
  return 0;
}

// Online serving bench: drive serve::PredictionService with synthetic
// Poisson load and emit BENCH_serve.json. With --threads 0 the whole run
// is synchronous on a virtual clock: two invocations with the same
// arguments produce byte-identical reports modulo "wall_time_s" (the
// determinism gate in scripts/check.sh). Table-4 scale is the default
// geometry: 2580-dim overlap codes through the 80-tree deployed IRFR.
// --fleet N hands off to cmd_serve_fleet (same flags + the fleet ones).
int cmd_serve_bench(int argc, char** argv) {
  serve::ServiceConfig sc;
  sc.feature_dim = 2580;
  sc.worker_threads = 2;
  serve::DriverRequest lc;
  std::size_t warm_rows = 256;
  std::string out_dir = ".";
  std::size_t fleet = 0;
  serve::RouterPolicy router = serve::RouterPolicy::kConsistentHash;
  std::size_t vnodes = 64;
  std::vector<serve::DrainStep> drains;
  std::string live_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--threads" && value != nullptr) {
      sc.worker_threads = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--requests" && value != nullptr) {
      lc.requests = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--rate" && value != nullptr) {
      lc.rate_hz = std::atof(value);
      ++i;
    } else if (arg == "--dim" && value != nullptr) {
      sc.feature_dim = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--batch" && value != nullptr) {
      sc.max_batch = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--linger-us" && value != nullptr) {
      sc.batch_linger = std::chrono::microseconds(
          std::strtoul(value, nullptr, 10));
      ++i;
    } else if (arg == "--queue" && value != nullptr) {
      sc.queue_capacity = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--warm" && value != nullptr) {
      warm_rows = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--observe-every" && value != nullptr) {
      lc.observe_every = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--mode" && value != nullptr) {
      const std::string v = value;
      if (v == "open") {
        lc.mode = serve::DriverRequest::Mode::kOpenLoop;
      } else if (v == "closed") {
        lc.mode = serve::DriverRequest::Mode::kClosedLoop;
      } else {
        return usage();
      }
      ++i;
    } else if (arg == "--clients" && value != nullptr) {
      lc.clients = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--seed" && value != nullptr) {
      lc.seed = std::strtoull(value, nullptr, 10);
      ++i;
    } else if (arg == "--out" && value != nullptr) {
      out_dir = value;
      ++i;
    } else if (arg == "--fleet" && value != nullptr) {
      fleet = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--router" && value != nullptr) {
      const auto parsed = serve::parse_router_policy(value);
      if (!parsed) return usage();
      router = *parsed;
      ++i;
    } else if (arg == "--vnodes" && value != nullptr) {
      vnodes = std::strtoul(value, nullptr, 10);
      ++i;
    } else if (arg == "--drain" && value != nullptr) {
      serve::DrainStep step;
      if (!parse_drain_spec(value, &step)) {
        std::fprintf(stderr, "error: bad --drain spec '%s' (want R@D[:A])\n",
                     value);
        return usage();
      }
      drains.push_back(step);
      ++i;
    } else if (arg == "--live" && value != nullptr) {
      live_path = value;
      ++i;
    } else if (arg == "--live-every" && value != nullptr) {
      lc.live_every = std::strtoul(value, nullptr, 10);
      ++i;
    } else {
      return usage();
    }
  }

  if (fleet > 0) {
    serve::FleetRequest fr;
    fr.replicas = fleet;
    fr.router = router;
    fr.vnodes_per_replica = vnodes;
    fr.service = sc;
    fr.drains = std::move(drains);
    return cmd_serve_fleet(std::move(fr), lc, warm_rows, out_dir, live_path);
  }
  if (!drains.empty() || !live_path.empty()) {
    std::fprintf(stderr,
                 "error: --drain/--live need --fleet N (single-service "
                 "serve-bench has no router or live stream)\n");
    return usage();
  }

  const auto t0 = std::chrono::steady_clock::now();

  // The serving model is the deployed IRFR, warmed on `warm_rows`
  // synthetic samples of the driver's ground-truth function so the
  // initial snapshot is a real model and under-load publishes are
  // genuine hot swaps (v1 -> v2 -> ...), not the cold first fit.
  ml::IncrementalForest model(core::deployed_irfr_config(), lc.seed);
  if (warm_rows > 0) {
    stats::Rng rng(lc.seed ^ 0x5EEDF00DULL);
    ml::Dataset warm(sc.feature_dim);
    std::vector<double> row(sc.feature_dim);
    for (std::size_t i = 0; i < warm_rows; ++i) {
      for (auto& v : row) v = rng.uniform();
      warm.add(row, serve::LoadDriver::label_of(row));
    }
    model.partial_fit(warm);
  }

  serve::PredictionService service(sc, std::move(model));
  const std::uint64_t swaps_before = service.stats().snapshot_swaps;
  const std::uint64_t version_before = service.stats().model_version;

  serve::LoadDriver driver(lc);
  serve::LoadOutcome outcome;
  if (sc.worker_threads == 0) {
    service.start();
    outcome = driver.run_deterministic(service);
  } else {
    outcome = driver.run_threaded(service);
  }
  service.stop();
  const serve::ServiceStats svc = service.stats();

  obs::RunReport report("serve");
  report.add_result("requests", static_cast<double>(outcome.submitted));
  report.add_result("completed", static_cast<double>(outcome.completed));
  report.add_result("shed", static_cast<double>(outcome.shed));
  report.add_result("shed_rate",
                    outcome.submitted > 0
                        ? static_cast<double>(outcome.shed) /
                              static_cast<double>(outcome.submitted)
                        : 0.0);
  report.add_result("throughput", outcome.throughput_rps, "req/s");
  report.add_result("latency_p50", outcome.latency_p50_us, "us");
  report.add_result("latency_p95", outcome.latency_p95_us, "us");
  report.add_result("latency_p99", outcome.latency_p99_us, "us");
  report.add_result("latency_mean", outcome.latency_mean_us, "us");
  report.add_result("latency_max", outcome.latency_max_us, "us");
  report.add_result("batches", static_cast<double>(svc.batches));
  report.add_result("mean_batch_size",
                    svc.batches > 0
                        ? static_cast<double>(svc.predicted) /
                              static_cast<double>(svc.batches)
                        : 0.0);
  report.add_result("train_rounds", static_cast<double>(svc.train_rounds));
  report.add_result("snapshot_swaps",
                    static_cast<double>(svc.snapshot_swaps));
  report.add_result("hot_swaps_under_load",
                    static_cast<double>(svc.snapshot_swaps - swaps_before));
  report.add_result("model_version", static_cast<double>(svc.model_version));
  obs::Json hist = obs::Json::array();
  for (std::uint64_t c : svc.batch_size_counts) {
    hist.push_back(static_cast<double>(c));
  }
  report.add_series("batch_size_counts", std::move(hist));
  obs::MetricsRegistry registry;
  service.export_metrics(registry);
  report.attach_metrics(registry);
  report.set_meta("mode", lc.mode == serve::DriverRequest::Mode::kOpenLoop
                              ? "open"
                              : "closed");
  report.set_meta("worker_threads", std::to_string(sc.worker_threads));
  report.set_meta("feature_dim", std::to_string(sc.feature_dim));
  report.set_meta("max_batch", std::to_string(sc.max_batch));
  report.set_meta("seed", std::to_string(lc.seed));
  report.set_wall_time_s(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());

  const std::string path = report.write(out_dir);
  if (path.empty()) {
    std::fprintf(stderr, "error: cannot write report to %s\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf(
      "serve-bench: %zu requests (%zu completed, %zu shed), %.0f req/s, "
      "p50/p95/p99 %.1f/%.1f/%.1f us, %llu batches, %llu hot swaps "
      "(model v%llu -> v%llu)\nreport -> %s\n",
      outcome.submitted, outcome.completed, outcome.shed,
      outcome.throughput_rps, outcome.latency_p50_us, outcome.latency_p95_us,
      outcome.latency_p99_us,
      static_cast<unsigned long long>(svc.batches),
      static_cast<unsigned long long>(svc.snapshot_swaps - swaps_before),
      static_cast<unsigned long long>(version_before),
      static_cast<unsigned long long>(svc.model_version), path.c_str());
  return 0;
}

/// Pretty-print one parsed gsight-live/v1 record. Unknown record types
/// fall back to compact JSON so the tool never hides stream content.
void print_live_record(const obs::Json& record) {
  const auto* type = record.find("type");
  const auto* ts = record.find("ts_s");
  const double t = ts != nullptr ? ts->number() : 0.0;
  const std::string kind = type != nullptr ? type->string() : "";
  if (kind == "hello") {
    const auto* schema = record.find("schema");
    const auto* source = record.find("source");
    std::printf("hello %s from %s",
                schema != nullptr ? schema->string().c_str() : "?",
                source != nullptr ? source->string().c_str() : "?");
    if (const auto* meta = record.find("meta"); meta != nullptr) {
      for (const auto& [k, v] : meta->members()) {
        std::printf("  %s=%s", k.c_str(), v.string().c_str());
      }
    }
    std::printf("\n");
    return;
  }
  if (kind == "metric") {
    const auto* name = record.find("name");
    const auto* labels = record.find("labels");
    const auto* value = record.find("value");
    const auto* delta = record.find("delta");
    std::printf("%10.6fs  metric  %-28s%s%s  %.6g (%+.6g)\n", t,
                name != nullptr ? name->string().c_str() : "?",
                labels != nullptr && !labels->string().empty() ? "  " : "",
                labels != nullptr ? labels->string().c_str() : "",
                value != nullptr ? value->number() : 0.0,
                delta != nullptr ? delta->number() : 0.0);
    return;
  }
  if (kind == "mark" || kind == "span") {
    const auto* name = record.find("name");
    std::printf("%10.6fs  %-6s  %-28s", t, kind.c_str(),
                name != nullptr ? name->string().c_str() : "?");
    if (const auto* dur = record.find("dur_s"); dur != nullptr) {
      std::printf("  dur %.6gs", dur->number());
    }
    if (const auto* args = record.find("args"); args != nullptr) {
      for (const auto& [k, v] : args->members()) {
        if (v.kind() == obs::Json::Kind::kString) {
          std::printf("  %s=%s", k.c_str(), v.string().c_str());
        } else {
          std::printf("  %s=%.6g", k.c_str(), v.number());
        }
      }
    }
    std::printf("\n");
    return;
  }
  std::printf("%s\n", record.dump_string(0).c_str());
}

// `gsight tail FILE [--follow]` — human-readable view of a gsight-live/v1
// NDJSON stream (serve-bench --live writes one). --follow keeps the file
// open and prints records as the producer appends them, tail -f style.
int cmd_tail(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string path = argv[0];
  bool follow = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--follow") == 0) {
      follow = true;
    } else {
      return usage();
    }
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  std::uint64_t line_no = 0;
  while (true) {
    if (!std::getline(in, line)) {
      if (!follow) break;
      in.clear();  // EOF is transient while the producer is still writing
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    const auto record = obs::parse_live_line(line, &error);
    if (!record) {
      std::fprintf(stderr, "%s:%llu: bad record: %s\n", path.c_str(),
                   static_cast<unsigned long long>(line_no), error.c_str());
      continue;
    }
    print_live_record(*record);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "profile") return cmd_profile(argc - 2, argv + 2);
    if (cmd == "train") return cmd_train(argc - 2, argv + 2);
    if (cmd == "predict") return cmd_predict(argc - 2, argv + 2);
    if (cmd == "campaign") return cmd_campaign(argc - 2, argv + 2);
    if (cmd == "serve-bench") return cmd_serve_bench(argc - 2, argv + 2);
    if (cmd == "clone-bench") return cmd_clone_bench(argc - 2, argv + 2);
    if (cmd == "tail") return cmd_tail(argc - 2, argv + 2);
    if (cmd == "demo") return cmd_demo();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
