// gsight — command-line front end for the library's main workflows.
//
//   gsight list                         workloads in the built-in suite
//   gsight profile <app> [qps] [out]    solo-profile an app (optionally save)
//   gsight train <store> <model-out>    build a training stream from the
//                                       suite and fit + persist an IRFR
//   gsight predict <store> <model> <target> <corunner> <same|apart>
//                                       what-if: predict target IPC with the
//                                       corunner colocated or isolated
//   gsight demo                         30-second end-to-end tour
//
// Everything runs on the simulator; profiles/models persist via the text
// formats in profiling/profile_io.hpp and ml/forest_io.hpp.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/trainer.hpp"
#include "ml/forest_io.hpp"
#include "profiling/profile_io.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace gsight;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gsight list\n"
               "  gsight profile <app> [qps] [store-out]\n"
               "  gsight train <store-in> <model-out> [scenarios]\n"
               "  gsight predict <store-in> <model-in> <target-key> "
               "<corunner-key> <same|apart>\n"
               "  gsight demo\n");
  return 2;
}

prof::SoloProfilerConfig profiler_config() {
  prof::SoloProfilerConfig cfg;
  cfg.server = sim::ServerConfig::socket();
  cfg.ls_profile_s = 25.0;
  return cfg;
}

int cmd_list() {
  std::printf("%-24s %-4s %10s %12s\n", "name", "cls", "functions",
              "solo(s)");
  for (const auto& app : wl::full_suite()) {
    std::printf("%-24s %-4s %10zu %12.3f\n", app.name.c_str(),
                wl::to_string(app.cls).c_str(), app.function_count(),
                app.total_solo_s());
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string name = argv[0];
  const double qps = argc >= 2 ? std::atof(argv[1]) : 0.0;
  const auto app = wl::by_name(name);
  prof::ProfileStore store;
  const auto key = core::ensure_profile(store, app, qps, profiler_config());
  const auto& profile = store.get(key);
  std::printf("profiled %s: %zu functions", key.c_str(),
              profile.functions.size());
  if (app.cls == wl::WorkloadClass::kLatencySensitive) {
    std::printf(", solo p99 %.2f ms, mean IPC %.3f\n",
                profile.solo_e2e_p99_s * 1e3, profile.solo_mean_ipc);
  } else {
    std::printf(", solo JCT %.1f s\n", profile.solo_jct_s);
  }
  for (const auto& fn : profile.functions) {
    std::printf("  %-24s solo %.4gs  ipc %.3f  %.1f cores\n",
                fn.fn_name.c_str(), fn.solo_duration_s, fn.solo_ipc,
                fn.demand.cores);
  }
  if (argc >= 3) {
    prof::save_store(store, argv[2]);
    std::printf("store written to %s\n", argv[2]);
  }
  return 0;
}

int cmd_train(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string store_path = argv[0];
  const std::string model_path = argv[1];
  const std::size_t scenarios = argc >= 3
                                    ? static_cast<std::size_t>(
                                          std::atol(argv[2]))
                                    : 120;

  prof::ProfileStore store;
  core::BuilderConfig cfg;
  cfg.runner.servers = 8;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.encoder.servers = 8;
  cfg.profiler = profiler_config();
  core::DatasetBuilder builder(&store, cfg, /*seed=*/2026);
  std::printf("building %zu LS+SC/BG scenarios (profiles on demand)...\n",
              scenarios);
  const auto stream =
      builder.build(core::ColocationClass::kLsScBg, core::QosKind::kIpc,
                    scenarios);

  ml::IncrementalForestConfig fc;
  fc.forest.n_trees = 80;
  fc.forest.tree.split_mode = ml::SplitMode::kRandom;
  fc.forest.tree.max_features = 128;
  ml::IncrementalForest model(fc, 1);
  ml::Dataset train(builder.encoder().dimension());
  for (const auto& s : stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  model.partial_fit(train);
  std::printf("trained IRFR on %zu samples from %zu scenarios\n",
              train.size(), stream.size());

  prof::save_store(store, store_path);
  ml::save_incremental_forest(model, model_path);
  std::printf("store -> %s\nmodel -> %s\n", store_path.c_str(),
              model_path.c_str());
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto store = prof::load_store(argv[0]);
  auto model = ml::load_incremental_forest(argv[1]);
  const auto& target = store.get(argv[2]);
  const auto& corunner = store.get(argv[3]);
  const bool same = argc >= 5 && std::strcmp(argv[4], "apart") != 0;

  core::EncoderConfig ec;
  ec.servers = 8;
  const core::Encoder encoder(ec);
  core::Scenario scenario;
  scenario.servers = 8;
  core::WorkloadDeployment t;
  t.profile = &target;
  for (std::size_t i = 0; i < target.functions.size(); ++i) {
    t.fn_to_server.push_back(i % 4);  // spread over the first 4 sockets
  }
  core::WorkloadDeployment c;
  c.profile = &corunner;
  c.fn_to_server.assign(corunner.functions.size(), same ? 0 : 7);
  c.lifetime_s = corunner.solo_jct_s;
  scenario.workloads = {t, c};

  const double ipc = model.predict(encoder.encode(scenario));
  std::printf("predicted IPC of %s with %s %s: %.3f (solo %.3f)\n", argv[2],
              argv[3], same ? "colocated" : "isolated", ipc,
              target.solo_mean_ipc);
  return 0;
}

int cmd_demo() {
  std::printf("== gsight demo: profile -> observe -> predict ==\n");
  prof::ProfileStore store;
  core::BuilderConfig cfg;
  cfg.runner.servers = 4;
  cfg.encoder.servers = 4;
  cfg.encoder.max_workloads = 4;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.profiler = profiler_config();
  cfg.profiler.ls_profile_s = 15.0;
  cfg.ls_qps_levels = {40.0};
  core::DatasetBuilder builder(&store, cfg, 7);

  core::PredictorConfig pc;
  pc.encoder = cfg.encoder;
  core::GsightPredictor predictor(pc);
  const auto stream =
      builder.build(core::ColocationClass::kLsScBg, core::QosKind::kIpc, 30);
  ml::Dataset train(predictor.encoder().dimension());
  for (const auto& s : stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  predictor.train(train);
  std::printf("trained on %zu samples (%zu scenarios)\n", train.size(),
              stream.size());
  // Prequential check on a few fresh scenarios.
  const auto fresh =
      builder.build(core::ColocationClass::kLsScBg, core::QosKind::kIpc, 6);
  for (const auto& s : fresh) {
    const double truth = stats::mean(s.labels);
    const double pred = predictor.predict(s.outcome.scenario);
    std::printf("  %-18s measured IPC %.3f predicted %.3f (%.1f%% error)\n",
                s.outcome.scenario.workloads[0].profile->app_name.c_str(),
                truth, pred, 100.0 * std::abs(pred - truth) / truth);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "profile") return cmd_profile(argc - 2, argv + 2);
    if (cmd == "train") return cmd_train(argc - 2, argv + 2);
    if (cmd == "predict") return cmd_predict(argc - 2, argv + 2);
    if (cmd == "demo") return cmd_demo();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
