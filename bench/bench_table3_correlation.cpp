// Table 3 — Pearson / Spearman correlation between the 19 monitored
// metrics and observed performance, measured across colocation runs.
// "Performance" follows the paper's usage: per-window normalised service
// speed of the function (inverse local latency, higher is better).
// Paper: context switches, network bandwidth and IPC correlate strongly
// positively; DTLB/branch MPKI and RX negatively; MLP, memory IO and disk
// IO are near zero and get dropped — leaving the 16 selected metrics.
#include <array>
#include <map>

#include "common.hpp"
#include "stats/correlation.hpp"
#include "profiling/metric_set.hpp"
#include "sim/platform.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("table3_correlation");

  // Colocate the social network with each characterization corunner;
  // collect per-window metric vectors and per-window performance for every
  // function. Correlations are computed after standardising each metric
  // and the performance *within each function* — the question Table 3
  // answers is "when a function's counters move, how does its performance
  // move", not "do high-MPKI functions happen to be slow".
  struct Tuple {
    std::size_t fn;
    prof::MetricVector metrics;
    double perf;
  };
  std::vector<Tuple> tuples;

  // Fixed request rate; performance varies through *contention* only
  // (corunner type x victim function), as in the paper's characterization.
  const auto corunners = wl::characterization_corunners();
  const stats::SeedStream seeds(5000);
  std::uint64_t run_index = 0;
  for (std::size_t ci = 0; ci <= corunners.size(); ++ci) {
    for (std::size_t victim = 0; victim < 9; victim += 2) {
      sim::PlatformConfig pc;
      pc.servers = 9;
      pc.server = sim::ServerConfig::socket();
      pc.seed = seeds.derive(run_index++);
      pc.instance.startup_cores = 0.0;
      pc.instance.startup_disk_mbps = 0.0;
      sim::Platform platform(pc);
      auto sn = wl::social_network();
      for (auto& fn : sn.functions) fn.cold_start_s = 0.0;
      std::vector<std::size_t> placement(9);
      for (std::size_t i = 0; i < 9; ++i) placement[i] = i;
      const std::size_t sn_id = platform.deploy(sn, placement);
      if (ci < corunners.size()) {
        const std::size_t co = platform.deploy(
            corunners[ci],
            std::vector<std::size_t>(corunners[ci].function_count(),
                                     victim));
        platform.submit_job(co);
      }
      platform.set_open_loop(sn_id, 60.0);
      platform.run_until(40.0);

      for (std::size_t fn = 0; fn < 9; ++fn) {
        // Per-window local latency -> performance = solo_latency / latency.
        std::map<std::int64_t, std::vector<double>> lat;
        for (const auto& [t, l] : platform.stats(sn_id).fn_latency[fn]) {
          if (t < 8.0) continue;
          lat[static_cast<std::int64_t>(t)].push_back(l);
        }
        for (const auto& [w, acc] : platform.recorder().windows(sn_id, fn)) {
          const auto lit = lat.find(w);
          if (lit == lat.end() || lit->second.size() < 3) continue;
          const auto metrics = prof::metrics_from(
              acc, sn.functions[fn].mem_alloc_gb,
              platform.recorder().window_s());
          // Performance, dimensionless and comparable across functions:
          // served fraction of the offered 60 req/s times the relative
          // speed (solo latency / measured latency). 1.0 = full speed,
          // full throughput; contention pushes both factors down.
          const double solo = sn.functions[fn].solo_duration_s();
          const double perf =
              (static_cast<double>(lit->second.size()) / 60.0) *
              (solo / stats::mean(lit->second));
          tuples.push_back({fn, metrics, perf});
        }
      }
    }
  }

  // Standardise per function, then pool.
  std::array<std::vector<double>, prof::kMetricCount> metric_series;
  std::vector<double> perf_series;
  for (std::size_t fn = 0; fn < 9; ++fn) {
    stats::Running perf_stats;
    std::array<stats::Running, prof::kMetricCount> metric_stats;
    for (const auto& t : tuples) {
      if (t.fn != fn) continue;
      perf_stats.add(t.perf);
      for (std::size_t k = 0; k < prof::kMetricCount; ++k) {
        metric_stats[k].add(t.metrics[k]);
      }
    }
    if (perf_stats.count() < 8) continue;
    for (const auto& t : tuples) {
      if (t.fn != fn) continue;
      perf_series.push_back((t.perf - perf_stats.mean()) /
                            std::max(perf_stats.stddev(), 1e-12));
      for (std::size_t k = 0; k < prof::kMetricCount; ++k) {
        const double sd = metric_stats[k].stddev();
        metric_series[k].push_back(
            sd < 1e-12 ? 0.0 : (t.metrics[k] - metric_stats[k].mean()) / sd);
      }
    }
  }

  bench::header("Table 3: correlation between metrics and performance");
  std::printf("%zu (metric vector, performance) windows\n",
              perf_series.size());
  std::printf("%-20s %10s %10s   %s\n", "metric", "Pearson", "Spearman",
              "selected?");
  bench::rule();
  auto corr_series = obs::Json::array();
  for (std::size_t k = 0; k < prof::kMetricCount; ++k) {
    const auto m = static_cast<prof::Metric>(k);
    const double p = stats::pearson(metric_series[k], perf_series);
    const double s = stats::spearman(metric_series[k], perf_series);
    std::printf("%-20s %10.2f %10.2f   %s\n", prof::metric_name(m), p, s,
                prof::is_selected(m) ? "yes" : "no (|corr|<0.1 in paper)");
    auto row = obs::Json::object();
    row.set("metric", prof::metric_name(m));
    row.set("pearson", p);
    row.set("spearman", s);
    corr_series.push_back(std::move(row));
  }
  run.result("windows", static_cast<double>(perf_series.size()));
  run.report().add_series("correlations", std::move(corr_series));
  bench::rule();
  std::printf("paper's strongest positives: context_switches 0.96, "
              "network_bandwidth 0.94, ipc 0.85, llc 0.83, cpu_util 0.81;\n"
              "strongest negatives: dtlb -0.75, branch -0.60, rx -0.60; "
              "dropped: mlp, memory_io, disk_io\n");

  std::printf("\n[bench_table3_correlation done in %.1f s]\n",
              total.seconds());
  return 0;
}
