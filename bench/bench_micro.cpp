// Microbenchmarks (google-benchmark) for the kernels on the scheduling
// fast path: overlap-code encoding, forest inference and incremental
// update, interference evaluation, and event-queue throughput.
// A custom reporter mirrors every run into a RunReport, so this binary
// emits BENCH_micro.json like every other bench (validated by
// tools/bench_schema_check in the check.sh smoke stage).
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "common.hpp"
#include "core/encoder.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/random_forest.hpp"
#include "serve/fleet.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "sim/engine.hpp"
#include "sim/interference.hpp"
#include "stats/rng.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/socialnetwork.hpp"

namespace {

using namespace gsight;

prof::AppProfile synthetic_profile(std::size_t fns, stats::Rng& rng) {
  prof::AppProfile p;
  p.app_name = "synthetic";
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    for (auto& m : fp.metrics) m = rng.uniform(0.0, 10.0);
    fp.demand.cores = rng.uniform(0.5, 4.0);
    fp.solo_duration_s = rng.uniform(0.001, 0.05);
    p.functions.push_back(fp);
  }
  return p;
}

core::Scenario synthetic_scenario(const prof::AppProfile& a,
                                  const prof::AppProfile& b,
                                  std::size_t servers, stats::Rng& rng) {
  core::Scenario s;
  s.servers = servers;
  for (const auto* prof : {&a, &b}) {
    core::WorkloadDeployment w;
    w.profile = prof;
    for (std::size_t i = 0; i < prof->functions.size(); ++i) {
      w.fn_to_server.push_back(rng.uniform_index(servers));
    }
    s.workloads.push_back(std::move(w));
  }
  return s;
}

void BM_EncoderEncode(benchmark::State& state) {
  stats::Rng rng(1);
  const auto a = synthetic_profile(9, rng);
  const auto b = synthetic_profile(3, rng);
  const auto scenario = synthetic_scenario(a, b, 8, rng);
  core::Encoder encoder{core::EncoderConfig{}};  // paper-scale: 2580 dims
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(scenario));
  }
}
BENCHMARK(BM_EncoderEncode);

void BM_ForestPredict(benchmark::State& state) {
  stats::Rng rng(2);
  const auto dims = static_cast<std::size_t>(state.range(0));
  ml::Dataset data(dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, rng.uniform());
  }
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 80;
  cfg.forest.tree.split_mode = ml::SplitMode::kRandom;
  ml::IncrementalForest forest(cfg, 1);
  forest.partial_fit(data);
  for (auto& v : x) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(x));
  }
}
BENCHMARK(BM_ForestPredict)->Arg(256)->Arg(2580);

// Paper-scale training set: Table-4 dimensionality (2580-dim overlap
// codes) with the deployed Extra-Trees config from core::make_model.
// `threads = 1` isolates the algorithmic kernel speedup from the pool.
ml::Dataset table4_train_data(std::size_t dims, std::size_t rows,
                              stats::Rng& rng) {
  ml::Dataset data(dims);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, rng.uniform());
  }
  return data;
}

ml::ForestConfig deployed_forest_config(ml::SplitMode mode,
                                        ml::TreeKernel kernel) {
  ml::ForestConfig cfg;
  cfg.n_trees = 8;
  cfg.threads = 1;
  cfg.tree.split_mode = mode;
  cfg.tree.max_depth = 22;
  cfg.tree.min_samples_leaf = 2;
  cfg.tree.max_features = 128;
  cfg.tree.kernel = kernel;
  return cfg;
}

// Legacy vs columnar training kernel, kRandom (the deployed split mode)
// at full 2580-dim scale and kBest at a presortable width. The RunReport
// rows for these four benchmarks are the record of the legacy-vs-fast
// speedup claimed in DESIGN.md §10.
void BM_ForestTrain(benchmark::State& state, ml::SplitMode mode,
                    ml::TreeKernel kernel, std::size_t dims) {
  stats::Rng data_rng(7);
  const auto data = table4_train_data(dims, 500, data_rng);
  const auto cfg = deployed_forest_config(mode, kernel);
  std::uint64_t seed = 11;
  for (auto _ : state) {
    ml::RandomForestRegressor forest(cfg);
    stats::Rng rng(seed++);
    forest.fit(data, rng);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
void BM_ForestTrainLegacy(benchmark::State& state) {
  BM_ForestTrain(state, ml::SplitMode::kRandom, ml::TreeKernel::kLegacy,
                 2580);
}
BENCHMARK(BM_ForestTrainLegacy)->Unit(benchmark::kMillisecond);
void BM_ForestTrainColumnar(benchmark::State& state) {
  BM_ForestTrain(state, ml::SplitMode::kRandom, ml::TreeKernel::kColumnar,
                 2580);
}
BENCHMARK(BM_ForestTrainColumnar)->Unit(benchmark::kMillisecond);
void BM_ForestTrainBestLegacy(benchmark::State& state) {
  BM_ForestTrain(state, ml::SplitMode::kBest, ml::TreeKernel::kLegacy, 256);
}
BENCHMARK(BM_ForestTrainBestLegacy)->Unit(benchmark::kMillisecond);
void BM_ForestTrainBestColumnar(benchmark::State& state) {
  BM_ForestTrain(state, ml::SplitMode::kBest, ml::TreeKernel::kColumnar,
                 256);
}
BENCHMARK(BM_ForestTrainBestColumnar)->Unit(benchmark::kMillisecond);

// Legacy inference (per-tree node-vector walks, the pre-flattening
// forest predict) against the flattened layouts: single predict() calls
// and the predict_batch API — the shape of query batch the placement
// fast path in GsightScheduler::sla_ok issues.
enum class PredictPath { kLegacyTreeWalk, kFlatSingles, kFlatBatch };

void BM_ForestPredictImpl(benchmark::State& state, PredictPath path) {
  stats::Rng rng(19);
  const std::size_t dims = 2580;
  const auto data = table4_train_data(dims, 500, rng);
  auto cfg = deployed_forest_config(ml::SplitMode::kRandom,
                                    ml::TreeKernel::kColumnar);
  cfg.n_trees = 80;  // deployed ensemble size (core::make_model)
  ml::RandomForestRegressor forest(cfg);
  stats::Rng fit_rng(23);
  forest.fit(data, fit_rng);
  ml::Matrix queries(0, dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : x) v = rng.uniform();
    queries.push_row(x);
  }
  for (auto _ : state) {
    switch (path) {
      case PredictPath::kLegacyTreeWalk: {
        double acc = 0.0;
        const auto trees = forest.trees();
        for (std::size_t r = 0; r < queries.rows(); ++r) {
          double sum = 0.0;
          for (const auto& tree : trees) sum += tree.predict(queries.row(r));
          acc += sum / static_cast<double>(trees.size());
        }
        benchmark::DoNotOptimize(acc);
        break;
      }
      case PredictPath::kFlatSingles: {
        double acc = 0.0;
        for (std::size_t r = 0; r < queries.rows(); ++r) {
          acc += forest.predict(queries.row(r));
        }
        benchmark::DoNotOptimize(acc);
        break;
      }
      case PredictPath::kFlatBatch:
        benchmark::DoNotOptimize(forest.predict_batch(queries));
        break;
    }
  }
}
void BM_ForestPredictLegacy(benchmark::State& state) {
  BM_ForestPredictImpl(state, PredictPath::kLegacyTreeWalk);
}
BENCHMARK(BM_ForestPredictLegacy)->Unit(benchmark::kMicrosecond);
void BM_ForestPredictSingles(benchmark::State& state) {
  BM_ForestPredictImpl(state, PredictPath::kFlatSingles);
}
BENCHMARK(BM_ForestPredictSingles)->Unit(benchmark::kMicrosecond);
void BM_ForestPredictBatched(benchmark::State& state) {
  BM_ForestPredictImpl(state, PredictPath::kFlatBatch);
}
BENCHMARK(BM_ForestPredictBatched)->Unit(benchmark::kMicrosecond);

// Blocked-kernel variants at the same Table-4 scale, driving the
// forest_kernel entry points directly: the scalar-blocked batch kernel
// (what GSIGHT_SIMD=OFF ships), the tree-lane AVX2 kernel per row, and
// the row-lane AVX2 gather kernel (what predict_batch dispatches to for
// wide batches). With SIMD compiled out the *_simd entry points forward
// to the scalar kernels, so Blocked/Gather then mirror the scalar rows.
enum class SimdPath { kScalarBlocked, kLaneBlocked, kLeafGather };

void BM_ForestPredictSimdImpl(benchmark::State& state, SimdPath path) {
  stats::Rng rng(19);
  const std::size_t dims = 2580;
  const auto data = table4_train_data(dims, 500, rng);
  auto cfg = deployed_forest_config(ml::SplitMode::kRandom,
                                    ml::TreeKernel::kColumnar);
  cfg.n_trees = 80;
  ml::RandomForestRegressor forest(cfg);
  stats::Rng fit_rng(23);
  forest.fit(data, fit_rng);
  ml::Matrix queries(0, dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : x) v = rng.uniform();
    queries.push_row(x);
  }
  const auto& blocked = forest.blocked();
  std::vector<double> out(queries.rows(), 0.0);
  std::vector<double> leaves(forest.tree_count(), 0.0);
  for (auto _ : state) {
    switch (path) {
      case SimdPath::kScalarBlocked:
        ml::forest_kernel::gather_scalar(blocked, queries, out);
        break;
      case SimdPath::kLaneBlocked:
        for (std::size_t r = 0; r < queries.rows(); ++r) {
          ml::forest_kernel::leaves_simd(blocked, queries.row(r), leaves);
          out[r] = ml::forest_kernel::reduce_mean(leaves);
        }
        break;
      case SimdPath::kLeafGather:
        ml::forest_kernel::gather_simd(blocked, queries, out);
        break;
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
}
void BM_ForestPredictSimdScalar(benchmark::State& state) {
  BM_ForestPredictSimdImpl(state, SimdPath::kScalarBlocked);
}
BENCHMARK(BM_ForestPredictSimdScalar)->Unit(benchmark::kMicrosecond);
void BM_ForestPredictSimdBlocked(benchmark::State& state) {
  BM_ForestPredictSimdImpl(state, SimdPath::kLaneBlocked);
}
BENCHMARK(BM_ForestPredictSimdBlocked)->Unit(benchmark::kMicrosecond);
void BM_ForestPredictSimdGather(benchmark::State& state) {
  BM_ForestPredictSimdImpl(state, SimdPath::kLeafGather);
}
BENCHMARK(BM_ForestPredictSimdGather)->Unit(benchmark::kMicrosecond);

// Serving-layer inference kernels: what the micro-batching queue costs
// relative to raw model calls, and what it buys under trainer contention.
// All three use the same trained incremental forest at Table-4 scale and
// the same 32-request sweep as BM_ForestPredict*:
//
//   Singles   — 32 direct predict() calls, single-threaded: the naive
//               per-request serving baseline.
//   Batch     — the same 32 requests through the synchronous service
//               (bounded queue + micro-batch + predict_batch): queue and
//               dispatch overhead on top of the batched fast path.
//   Contended — the threaded service with workers batching while the
//               background trainer keeps folding observations and
//               hot-swapping snapshots: the production shape.
ml::IncrementalForest serve_bench_model(std::size_t dims) {
  stats::Rng rng(29);
  ml::Dataset data(dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, rng.uniform());
  }
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 80;
  cfg.forest.tree.split_mode = ml::SplitMode::kRandom;
  cfg.forest.tree.max_features = 128;
  ml::IncrementalForest forest(cfg, 1);
  forest.partial_fit(data);
  return forest;
}

std::vector<std::vector<double>> serve_bench_queries(std::size_t dims,
                                                     std::size_t n) {
  stats::Rng rng(31);
  std::vector<std::vector<double>> queries(n, std::vector<double>(dims));
  for (auto& q : queries) {
    for (auto& v : q) v = rng.uniform();
  }
  return queries;
}

constexpr std::size_t kServeDims = 2580;
constexpr std::size_t kServeSweep = 32;

void BM_ServePredictSingles(benchmark::State& state) {
  const auto model = serve_bench_model(kServeDims);
  const auto queries = serve_bench_queries(kServeDims, kServeSweep);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& q : queries) acc += model.predict(q);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ServePredictSingles)->Unit(benchmark::kMicrosecond);

void BM_ServePredictBatchService(benchmark::State& state) {
  serve::ServiceConfig cfg;
  cfg.feature_dim = kServeDims;
  cfg.max_batch = kServeSweep;
  cfg.worker_threads = 0;  // synchronous: the caller is the batcher
  serve::PredictionService service(cfg, serve_bench_model(kServeDims));
  service.start();
  const auto queries = serve_bench_queries(kServeDims, kServeSweep);
  for (auto _ : state) {
    for (const auto& q : queries) {
      service.submit(std::vector<double>(q), nullptr);
    }
    std::size_t served = 0;
    while (served < kServeSweep) served += service.poll();
    benchmark::DoNotOptimize(served);
  }
}
BENCHMARK(BM_ServePredictBatchService)->Unit(benchmark::kMicrosecond);

void BM_ServePredictBatchContended(benchmark::State& state) {
  serve::ServiceConfig cfg;
  cfg.feature_dim = kServeDims;
  cfg.max_batch = kServeSweep;
  cfg.worker_threads = 2;
  cfg.train_batch = 64;  // every other sweep triggers a background round
  serve::PredictionService service(cfg, serve_bench_model(kServeDims));
  service.start();
  const auto queries = serve_bench_queries(kServeDims, kServeSweep);
  stats::Rng label_rng(37);
  for (auto _ : state) {
    std::atomic<std::size_t> done{0};
    for (const auto& q : queries) {
      service.observe(std::vector<double>(q), label_rng.uniform());
      service.submit(std::vector<double>(q),
                     [&done](const serve::PredictResult&) {
                       done.fetch_add(1, std::memory_order_release);
                     });
    }
    while (done.load(std::memory_order_acquire) < kServeSweep) {
      std::this_thread::yield();
    }
  }
  state.counters["snapshot_swaps"] =
      static_cast<double>(service.stats().snapshot_swaps);
  service.stop();
}
BENCHMARK(BM_ServePredictBatchContended)->Unit(benchmark::kMicrosecond);

// The same 32-request sweep through a 4-replica routed fleet (synchronous
// regime, consistent-hash router): route + per-replica queue + micro-batch
// on top of the batched fast path — the fleet tax over BatchService.
void BM_ServeFleetRouted(benchmark::State& state) {
  serve::FleetRequest fr;
  fr.replicas = 4;
  fr.service.feature_dim = kServeDims;
  fr.service.max_batch = kServeSweep;
  fr.service.worker_threads = 0;  // synchronous: the caller polls
  serve::PredictionFleet fleet(fr, serve_bench_model(kServeDims));
  fleet.start();
  const auto queries = serve_bench_queries(kServeDims, kServeSweep);
  for (auto _ : state) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      fleet.submit(i, std::vector<double>(queries[i]), nullptr);
    }
    std::size_t served = 0;
    while (served < kServeSweep) served += fleet.poll();
    benchmark::DoNotOptimize(served);
  }
  state.counters["watermark"] = static_cast<double>(fleet.watermark());
  fleet.stop();
}
BENCHMARK(BM_ServeFleetRouted)->Unit(benchmark::kMicrosecond);

// Router overhead in isolation (ROADMAP item 5 follow-up): one route()
// decision per iteration, no replica behind it. The hash policy walks the
// ring (binary search over replicas * vnodes points); least-queued scans
// the depth vector. Sweeping 1/4/16 replicas shows how each policy's
// per-request tax scales with fleet width.
void BM_ServeRouterImpl(benchmark::State& state, serve::RouterPolicy policy) {
  const auto replicas = static_cast<std::size_t>(state.range(0));
  serve::Router router(policy, replicas, /*vnodes_per_replica=*/64);
  std::vector<std::size_t> depths(replicas);
  stats::Rng rng(11);
  for (auto& d : depths) d = rng.uniform_index(32);
  std::uint64_t key = 0;
  for (auto _ : state) {
    const auto choice = router.route(++key, depths);
    benchmark::DoNotOptimize(choice);
  }
}
void BM_ServeRouterHash(benchmark::State& state) {
  BM_ServeRouterImpl(state, serve::RouterPolicy::kConsistentHash);
}
BENCHMARK(BM_ServeRouterHash)->Arg(1)->Arg(4)->Arg(16);
void BM_ServeRouterLeastQueued(benchmark::State& state) {
  BM_ServeRouterImpl(state, serve::RouterPolicy::kLeastQueued);
}
BENCHMARK(BM_ServeRouterLeastQueued)->Arg(1)->Arg(4)->Arg(16);

void BM_ForestIncrementalUpdate(benchmark::State& state) {
  stats::Rng rng(3);
  const std::size_t dims = 2580;
  ml::Dataset data(dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, rng.uniform());
  }
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 80;
  cfg.forest.tree.split_mode = ml::SplitMode::kRandom;
  ml::IncrementalForest forest(cfg, 1);
  forest.partial_fit(data);
  ml::Dataset batch(dims);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : x) v = rng.uniform();
    batch.add(x, rng.uniform());
  }
  for (auto _ : state) {
    forest.partial_fit(batch);
  }
}
BENCHMARK(BM_ForestIncrementalUpdate)->Unit(benchmark::kMillisecond);

void BM_InterferenceEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::InterferenceModel model;
  const auto server = sim::ServerConfig::socket();
  std::vector<wl::Phase> phases;
  for (std::size_t i = 0; i < n; ++i) {
    phases.push_back(i % 2 == 0 ? wl::memory_phase("m", 1.0)
                                : wl::mixed_phase("x", 1.0));
  }
  std::vector<const wl::Phase*> ptrs;
  for (const auto& p : phases) ptrs.push_back(&p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(server, ptrs));
  }
}
BENCHMARK(BM_InterferenceEvaluate)->Arg(2)->Arg(8)->Arg(32);

void BM_SeedStreamDerive(benchmark::State& state) {
  std::uint64_t root = 0x9E3779B97F4A7C15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SeedStream::derive(root, i++));
  }
}
BENCHMARK(BM_SeedStreamDerive);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run_all();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMicrosecond);

// Console output as usual, plus each finished run recorded as a RunReport
// result row (name = benchmark name, value = adjusted real time).
class ReportingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(bench::Run* run) : run_(run) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& r : runs) {
      if (r.error_occurred) continue;
      run_->result(r.benchmark_name(), r.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(r.time_unit));
    }
  }

 private:
  bench::Run* run_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::Run run("micro");
  ReportingReporter reporter(&run);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
