// Microbenchmarks (google-benchmark) for the kernels on the scheduling
// fast path: overlap-code encoding, forest inference and incremental
// update, interference evaluation, and event-queue throughput.
// A custom reporter mirrors every run into a RunReport, so this binary
// emits BENCH_micro.json like every other bench (validated by
// tools/bench_schema_check in the check.sh smoke stage).
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/encoder.hpp"
#include "ml/incremental_forest.hpp"
#include "sim/engine.hpp"
#include "sim/interference.hpp"
#include "stats/rng.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/socialnetwork.hpp"

namespace {

using namespace gsight;

prof::AppProfile synthetic_profile(std::size_t fns, stats::Rng& rng) {
  prof::AppProfile p;
  p.app_name = "synthetic";
  for (std::size_t i = 0; i < fns; ++i) {
    prof::FunctionProfile fp;
    for (auto& m : fp.metrics) m = rng.uniform(0.0, 10.0);
    fp.demand.cores = rng.uniform(0.5, 4.0);
    fp.solo_duration_s = rng.uniform(0.001, 0.05);
    p.functions.push_back(fp);
  }
  return p;
}

core::Scenario synthetic_scenario(const prof::AppProfile& a,
                                  const prof::AppProfile& b,
                                  std::size_t servers, stats::Rng& rng) {
  core::Scenario s;
  s.servers = servers;
  for (const auto* prof : {&a, &b}) {
    core::WorkloadDeployment w;
    w.profile = prof;
    for (std::size_t i = 0; i < prof->functions.size(); ++i) {
      w.fn_to_server.push_back(rng.uniform_index(servers));
    }
    s.workloads.push_back(std::move(w));
  }
  return s;
}

void BM_EncoderEncode(benchmark::State& state) {
  stats::Rng rng(1);
  const auto a = synthetic_profile(9, rng);
  const auto b = synthetic_profile(3, rng);
  const auto scenario = synthetic_scenario(a, b, 8, rng);
  core::Encoder encoder{core::EncoderConfig{}};  // paper-scale: 2580 dims
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(scenario));
  }
}
BENCHMARK(BM_EncoderEncode);

void BM_ForestPredict(benchmark::State& state) {
  stats::Rng rng(2);
  const auto dims = static_cast<std::size_t>(state.range(0));
  ml::Dataset data(dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, rng.uniform());
  }
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 80;
  cfg.forest.tree.split_mode = ml::SplitMode::kRandom;
  ml::IncrementalForest forest(cfg, 1);
  forest.partial_fit(data);
  for (auto& v : x) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(x));
  }
}
BENCHMARK(BM_ForestPredict)->Arg(256)->Arg(2580);

void BM_ForestIncrementalUpdate(benchmark::State& state) {
  stats::Rng rng(3);
  const std::size_t dims = 2580;
  ml::Dataset data(dims);
  std::vector<double> x(dims);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.uniform();
    data.add(x, rng.uniform());
  }
  ml::IncrementalForestConfig cfg;
  cfg.forest.n_trees = 80;
  cfg.forest.tree.split_mode = ml::SplitMode::kRandom;
  ml::IncrementalForest forest(cfg, 1);
  forest.partial_fit(data);
  ml::Dataset batch(dims);
  for (int i = 0; i < 32; ++i) {
    for (auto& v : x) v = rng.uniform();
    batch.add(x, rng.uniform());
  }
  for (auto _ : state) {
    forest.partial_fit(batch);
  }
}
BENCHMARK(BM_ForestIncrementalUpdate)->Unit(benchmark::kMillisecond);

void BM_InterferenceEvaluate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::InterferenceModel model;
  const auto server = sim::ServerConfig::socket();
  std::vector<wl::Phase> phases;
  for (std::size_t i = 0; i < n; ++i) {
    phases.push_back(i % 2 == 0 ? wl::memory_phase("m", 1.0)
                                : wl::mixed_phase("x", 1.0));
  }
  std::vector<const wl::Phase*> ptrs;
  for (const auto& p : phases) ptrs.push_back(&p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(server, ptrs));
  }
}
BENCHMARK(BM_InterferenceEvaluate)->Arg(2)->Arg(8)->Arg(32);

void BM_SeedStreamDerive(benchmark::State& state) {
  std::uint64_t root = 0x9E3779B97F4A7C15ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SeedStream::derive(root, i++));
  }
}
BENCHMARK(BM_SeedStreamDerive);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run_all();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMicrosecond);

// Console output as usual, plus each finished run recorded as a RunReport
// result row (name = benchmark name, value = adjusted real time).
class ReportingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(bench::Run* run) : run_(run) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& r : runs) {
      if (r.error_occurred) continue;
      run_->result(r.benchmark_name(), r.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(r.time_unit));
    }
  }

 private:
  bench::Run* run_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::Run run("micro");
  ReportingReporter reporter(&run);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
