// Figure 14 — online running cost and scalability.
// (a) Cost breakdown of the scheduling pipeline: invocation forwarding,
//     scheduling decision (prediction calls), instance starting, resource
//     allocation. Paper: instance start dominates; a decision takes a few
//     ms (inference 3.48 ms, incremental update 24.784 ms on their HW).
// (b) Gateway forwarding is stable below ~110 instances and collapses
//     past ~120 (the shared-gateway scalability wall).
#include "common.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sim/platform.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/socialnetwork.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("fig14_overhead");

  // --- Train a small IRFR so inference/update timings are realistic ------
  auto cfg = bench::quick_builder_config();
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, /*seed=*/1414);
  auto stream =
      builder.build(bench::build_request(core::ColocationClass::kLsScBg,
                                         core::QosKind::kIpc, 60));
  core::PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  pcfg.model = core::ModelKind::kIRFR;
  core::GsightPredictor predictor(pcfg);
  ml::Dataset train(predictor.encoder().dimension());
  for (const auto& s : stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  predictor.train(train);

  bench::header("Figure 14(a): per-operation cost of the scheduling pipeline "
                "(wall clock on this machine)");
  // Inference latency.
  {
    bench::Stopwatch sw;
    const std::size_t reps = 200;
    double sink = 0.0;
    for (std::size_t i = 0; i < reps; ++i) {
      sink += predictor.predict(stream[i % stream.size()].outcome.scenario);
    }
    const double ms = sw.millis() / static_cast<double>(reps);
    std::printf("%-28s %10.3f ms   (paper: 3.48 ms)\n", "model inference", ms);
    run.result("model_inference_ms", ms, "ms");
    (void)sink;
  }
  // Incremental update latency.
  {
    core::GsightPredictor upd(pcfg);
    upd.train(train);
    bench::Stopwatch sw;
    const std::size_t reps = 8;
    for (std::size_t i = 0; i < reps; ++i) {
      for (int j = 0; j < 32; ++j) {
        upd.observe(stream[j % stream.size()].outcome.scenario, 1.0);
      }
      upd.flush();
    }
    const double ms = sw.millis() / static_cast<double>(reps);
    std::printf("%-28s %10.3f ms   (paper: 24.784 ms)\n",
                "incremental update (batch)", ms);
    run.result("incremental_update_ms", ms, "ms");
  }
  // Scheduling decision (binary-search placement incl. predictions).
  {
    sched::DeploymentState state;
    state.servers = 8;
    state.load.resize(8);
    for (auto& l : state.load) {
      l.cores_capacity = 10.0;
      l.mem_capacity = 64.0;
    }
    const auto& profile = stream[0].outcome.scenario.workloads[0].profile;
    for (std::size_t w = 0; w < 4; ++w) {
      sched::DeployedWorkload dw;
      dw.profile = profile;
      dw.fn_to_server.assign(profile->functions.size(), w % 8);
      dw.cls = wl::WorkloadClass::kLatencySensitive;
      dw.sla = core::Sla{0.1, 0.5};
      state.workloads.push_back(dw);
    }
    sched::GsightScheduler scheduler(&predictor);
    bench::Stopwatch sw;
    const std::size_t reps = 50;
    for (std::size_t i = 0; i < reps; ++i) {
      (void)scheduler.place_workload(*profile, state, core::Sla{0.1, 0.5});
    }
    const double ms = sw.millis() / static_cast<double>(reps);
    std::printf("%-28s %10.3f ms   (paper: a few ms)\n",
                "scheduling decision", ms);
    run.result("scheduling_decision_ms", ms, "ms");
  }
  // Instance start and invocation forwarding come from the simulator's
  // model (simulated time, matching the paper's measured platform).
  std::printf("%-28s %10.3f ms   (simulated; paper: dominates)\n",
              "instance cold start", 2000.0);
  std::printf("%-28s %10.3f ms   (simulated, unloaded)\n",
              "invocation forwarding", 0.2);

  // --- (b): gateway forwarding vs instance count ---------------------------
  bench::header("Figure 14(b): gateway forwarding latency vs #instances");
  std::printf("%12s %22s\n", "#instances", "mean forward (ms)");
  bench::rule();
  auto knee_series = obs::Json::array();
  for (const std::size_t instances :
       {20u, 60u, 100u, 110u, 120u, 140u, 170u, 200u}) {
    sim::PlatformConfig pc;
    pc.servers = 8;
    pc.server = sim::ServerConfig::socket();
    pc.seed = stats::SeedStream::derive(7, instances);
    pc.instance.startup_cores = 0.0;
    pc.instance.startup_disk_mbps = 0.0;
    sim::Platform platform(pc);
    auto sn = wl::social_network();
    for (auto& fn : sn.functions) fn.cold_start_s = 0.0;
    std::vector<std::size_t> placement(9);
    for (std::size_t i = 0; i < 9; ++i) placement[i] = i % 8;
    const std::size_t id = platform.deploy(sn, placement);
    // Pad with extra replicas spread across the cluster to reach the
    // target instance count.
    std::size_t fn = 0;
    while (platform.total_instances() < instances) {
      platform.add_replica(id, fn % 9,
                           (fn * 5 + instances) % pc.servers);
      ++fn;
    }
    platform.set_open_loop(id, 60.0);
    platform.run_until(20.0);
    const double forward_ms =
        platform.gateway().forwarding_latencies().mean() * 1e3;
    std::printf("%12zu %22.3f\n", platform.total_instances(), forward_ms);
    auto row = obs::Json::object();
    row.set("instances", platform.total_instances());
    row.set("forward_ms", forward_ms);
    knee_series.push_back(std::move(row));
  }
  run.report().add_series("forward_ms_vs_instances", std::move(knee_series));
  bench::rule();
  std::printf("paper: stable below ~110 instances, rapid slowdown past 120 "
              "(gateway bottleneck)\n");

  std::printf("\n[bench_fig14_overhead done in %.1f s]\n", total.seconds());
  return 0;
}
