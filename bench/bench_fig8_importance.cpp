// Figure 8 — impurity-based importance of the 16 selected metrics in the
// trained IRFR model. The encoder spreads each metric over many feature
// positions (per workload slot, per server row, R and U matrices); this
// bench folds per-feature forest importances back onto the metric they
// carry, plus the temporal D/T codes and the non-metric R entries.
// Paper: all 16 metrics are informative (disk IO aside).
#include <algorithm>
#include <array>

#include "common.hpp"
#include "ml/incremental_forest.hpp"
#include "profiling/metric_set.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("fig8_importance");

  auto cfg = bench::quick_builder_config();
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, /*seed=*/888);

  // Mixed training stream (both LS classes) labelled with IPC.
  std::vector<core::ScenarioSamples> samples;
  for (const auto cls :
       {core::ColocationClass::kLsLs, core::ColocationClass::kLsScBg}) {
    auto part = builder.build(bench::build_request(cls, core::QosKind::kIpc, 150));
    for (auto& s : part) samples.push_back(std::move(s));
  }
  const core::Encoder encoder(cfg.encoder);
  ml::Dataset train(encoder.dimension());
  for (const auto& s : samples) {
    for (double l : s.labels) train.add(s.features, l);
  }
  std::printf("training IRFR on %zu samples (%zu scenarios, %zu dims)\n",
              train.size(), samples.size(), encoder.dimension());

  ml::IncrementalForestConfig fc;
  fc.forest.n_trees = 80;
  fc.forest.tree.split_mode = ml::SplitMode::kRandom;
  fc.forest.tree.max_features = 128;
  ml::IncrementalForest forest(fc, 1);
  forest.partial_fit(train);
  const auto importance = forest.importance();

  // Fold feature positions back onto metrics. Feature layout (encoder.cpp):
  // per slot: R (S x 16) then U (S x 16); tail: D[n], T[n].
  const std::size_t n = cfg.encoder.max_workloads;
  const std::size_t s = cfg.encoder.servers;
  const std::size_t w = core::kCodeWidth;
  std::array<double, prof::kSelectedCount> metric_importance{};
  double r_importance = 0.0, d_importance = 0.0, t_importance = 0.0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t base = slot * 2 * s * w;
    for (std::size_t srv = 0; srv < s; ++srv) {
      for (std::size_t k = 0; k < w; ++k) {
        r_importance += importance[base + srv * w + k];
        metric_importance[k] += importance[base + s * w + srv * w + k];
      }
    }
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    d_importance += importance[2 * n * s * w + slot];
    t_importance += importance[2 * n * s * w + n + slot];
  }

  bench::header("Figure 8: impurity importance of the 16 selected metrics "
                "(U-matrix positions, summed)");
  // Sort for display.
  std::vector<std::size_t> order(prof::kSelectedCount);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return metric_importance[a] > metric_importance[b];
  });
  for (std::size_t i : order) {
    const auto metric = prof::selected_metrics()[i];
    std::printf("%-20s %8.4f  %s\n", prof::metric_name(metric),
                metric_importance[i],
                std::string(static_cast<std::size_t>(
                                metric_importance[i] * 400.0),
                            '#')
                    .c_str());
  }
  bench::rule();
  std::printf("allocation matrix (R) total: %.4f   start delays (D): %.4f   "
              "lifetimes (T): %.4f\n",
              r_importance, d_importance, t_importance);
  std::size_t informative = 0;
  for (double v : metric_importance) {
    if (v > 0.001) ++informative;
  }
  std::printf("%zu/16 metrics carry non-trivial importance (paper: all "
              "except disk IO)\n", informative);
  run.result("informative_metrics", static_cast<double>(informative));
  run.result("r_matrix_importance", r_importance);
  auto imp_series = obs::Json::array();
  for (std::size_t i : order) {
    auto row = obs::Json::object();
    row.set("metric", prof::metric_name(prof::selected_metrics()[i]));
    row.set("importance", metric_importance[i]);
    imp_series.push_back(std::move(row));
  }
  run.report().add_series("metric_importance", std::move(imp_series));

  std::printf("\n[bench_fig8_importance done in %.1f s]\n", total.seconds());
  return 0;
}
