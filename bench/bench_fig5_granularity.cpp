// Figure 5 / Observation 6 — function-level vs workload-level profiling.
// Following the paper: models are trained on traces of multi-function
// workloads (feature-generation, e-commerce) and evaluated on the social
// network. Function-level pipelines see per-function profiles and
// placements; workload-level pipelines fuse each app into one monolithic
// container (wl::monolithize) before profiling and deployment.
// Paper: function-level profiles halve the median prediction error
// (up to 4x), and cut its variance ~13x (up to 42x).
#include "common.hpp"
#include "stats/histogram.hpp"
#include "workloads/sparkapps.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/serverful.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace gsight;

// Build a scenario stream whose targets cycle through `targets`, each
// colocated with 1-2 random FunctionBench corunners.
std::vector<core::ScenarioSamples> build_stream(
    prof::ProfileStore& store, const std::vector<wl::App>& targets,
    const core::BuilderConfig& cfg, std::size_t scenarios,
    std::uint64_t seed) {
  stats::Rng rng(seed);
  core::ScenarioRunner runner(&store, cfg.runner);
  core::Encoder encoder(cfg.encoder);
  std::vector<wl::App> corunners = {
      wl::matmul(3.0 * cfg.sc_scale), wl::dd(3.0 * cfg.sc_scale),
      wl::iperf(3.0 * cfg.sc_scale),
      wl::video_processing(4.0 * cfg.sc_scale)};
  for (const auto& co : corunners) {
    core::ensure_profile(store, co, 0.0, cfg.profiler);
  }
  for (const auto& t : targets) {
    for (double qps : cfg.ls_qps_levels) {
      core::ensure_profile(store, t, qps, cfg.profiler);
    }
  }

  std::vector<core::ScenarioSamples> out;
  for (std::size_t i = 0; i < scenarios; ++i) {
    const auto& target = targets[i % targets.size()];
    core::ScenarioSpec spec;
    core::ScenarioSpec::Member m;
    m.app = target;
    m.qps = cfg.ls_qps_levels[rng.uniform_index(cfg.ls_qps_levels.size())];
    m.fn_to_server.resize(target.function_count());
    for (auto& s : m.fn_to_server) s = rng.uniform_index(cfg.runner.servers);
    spec.members.push_back(m);
    std::vector<bool> hot(cfg.runner.servers, false);
    for (std::size_t s : m.fn_to_server) hot[s] = true;
    const std::size_t extra = 1 + rng.uniform_index(2);
    for (std::size_t c = 0; c < extra; ++c) {
      core::ScenarioSpec::Member co;
      co.app = corunners[rng.uniform_index(corunners.size())];
      co.start_delay_s = rng.uniform(0.0, 15.0);
      co.fn_to_server.resize(co.app.function_count());
      for (auto& s : co.fn_to_server) {
        std::size_t probe = rng.uniform_index(cfg.runner.servers);
        if (rng.chance(0.75)) {
          // land on one of the target's servers
          do {
            probe = rng.uniform_index(cfg.runner.servers);
          } while (!hot[probe]);
        }
        s = probe;
      }
      spec.members.push_back(co);
    }
    auto outcome = runner.run(spec);
    core::ScenarioSamples s;
    s.features = encoder.encode(outcome.scenario);
    s.labels = outcome.window_ipc;
    s.outcome = std::move(outcome);
    if (!s.labels.empty()) out.push_back(std::move(s));
  }
  return out;
}

struct GranularityResult {
  std::vector<double> ipc_errors;
  std::vector<double> lat_errors;
};

GranularityResult evaluate(prof::ProfileStore& store,
                           const core::BuilderConfig& cfg,
                           bool function_level, core::ModelKind model) {
  // Train targets: feature-generation cannot be an LS target, so the
  // paper's pairing becomes e-commerce + ml-serving for training and the
  // social network for testing; feature-generation joins the corunner mix
  // via the generic pool. Workload-level fuses all targets.
  std::vector<wl::App> train_targets = {wl::e_commerce(), wl::ml_serving()};
  std::vector<wl::App> test_targets = {wl::social_network()};
  if (!function_level) {
    for (auto& a : train_targets) a = wl::monolithize(a);
    for (auto& a : test_targets) a = wl::monolithize(a);
  }
  auto train = build_stream(store, train_targets, cfg, 160,
                            function_level ? 21 : 22);
  auto test = build_stream(store, test_targets, cfg, 60,
                           function_level ? 31 : 32);

  core::PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  pcfg.model = model;
  core::GsightPredictor ipc_pred(pcfg);
  pcfg.qos = core::QosKind::kTailLatency;
  core::GsightPredictor lat_pred(pcfg);

  ml::Dataset ipc_train(ipc_pred.encoder().dimension());
  ml::Dataset lat_train(lat_pred.encoder().dimension());
  for (const auto& s : train) {
    for (double l : s.labels) ipc_train.add(s.features, l);
    for (double l : s.outcome.window_p99) lat_train.add(s.features, l);
  }
  ipc_pred.train(ipc_train);
  if (!lat_train.empty()) lat_pred.train(lat_train);

  GranularityResult r;
  for (const auto& s : test) {
    const double ipc_true = stats::mean(s.labels);
    if (ipc_true > 0.0) {
      r.ipc_errors.push_back(
          100.0 * std::abs(ipc_pred.predict(s.outcome.scenario) - ipc_true) /
          ipc_true);
    }
    if (!s.outcome.window_p99.empty()) {
      const double lat_true = stats::mean(s.outcome.window_p99);
      if (lat_true > 0.0) {
        r.lat_errors.push_back(
            100.0 *
            std::abs(lat_pred.predict(s.outcome.scenario) - lat_true) /
            lat_true);
      }
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig5_granularity");
  auto cfg = bench::quick_builder_config();

  const std::vector<core::ModelKind> models = {
      core::ModelKind::kIKNN, core::ModelKind::kILR, core::ModelKind::kIRFR,
      core::ModelKind::kISVR, core::ModelKind::kIMLP};

  bench::header("Figure 5: prediction-error distributions, function-level vs "
                "workload-level profiling (train: e-commerce+ml-serving; "
                "test: social network)");
  double med_fn_sum = 0.0, med_wl_sum = 0.0;
  double var_fn_sum = 0.0, var_wl_sum = 0.0;
  for (const auto model : models) {
    prof::ProfileStore store_fn, store_wl;
    const auto fn_level = evaluate(store_fn, cfg, true, model);
    const auto wl_level = evaluate(store_wl, cfg, false, model);
    std::printf("\n[%s] IPC error (%%)\n", to_string(model));
    std::printf("  function-level : %s\n",
                stats::distribution_summary(fn_level.ipc_errors).c_str());
    std::printf("  workload-level : %s\n",
                stats::distribution_summary(wl_level.ipc_errors).c_str());
    std::printf("[%s] tail-latency error (%%)\n", to_string(model));
    std::printf("  function-level : %s\n",
                stats::distribution_summary(fn_level.lat_errors).c_str());
    std::printf("  workload-level : %s\n",
                stats::distribution_summary(wl_level.lat_errors).c_str());
    med_fn_sum += stats::median(fn_level.ipc_errors);
    med_wl_sum += stats::median(wl_level.ipc_errors);
    var_fn_sum += stats::variance(fn_level.ipc_errors);
    var_wl_sum += stats::variance(wl_level.ipc_errors);
  }
  bench::rule();
  std::printf("average median IPC error: function-level %.2f%% vs "
              "workload-level %.2f%% (%.1fx lower; paper: ~2x lower, up to "
              "4x)\n",
              med_fn_sum / 5.0, med_wl_sum / 5.0, med_wl_sum / med_fn_sum);
  std::printf("average IPC-error variance: function-level %.2f vs "
              "workload-level %.2f (%.1fx lower; paper: ~13x lower)\n",
              var_fn_sum / 5.0, var_wl_sum / 5.0,
              var_fn_sum > 0 ? var_wl_sum / var_fn_sum : 0.0);
  run.result("median_ipc_error_fn_pct", med_fn_sum / 5.0, "%");
  run.result("median_ipc_error_wl_pct", med_wl_sum / 5.0, "%");
  run.result("median_error_ratio_wl_over_fn", med_wl_sum / med_fn_sum);
  run.result("variance_ratio_wl_over_fn",
             var_fn_sum > 0 ? var_wl_sum / var_fn_sum : 0.0);

  std::printf("\n[bench_fig5_granularity done in %.1f s]\n", total.seconds());
  return 0;
}
