// Figure 4 — hotspot propagation and restoring propagation.
// Interference is created at (a) compose-post (fn 1) and (b)
// compose-and-upload (fn 6). For each case we report every function's
// local p99 latency and invocation rate in three regimes: baseline,
// under interference, and after "local control" (migrating the corunner
// away, modelled by aborting its execution).
// Paper: the interfered function's p99 rises, all other functions' p99
// *drops* (their arrival rate is gated by the bottleneck — Observation 4);
// local control restores the interfered function and re-raises the others
// as invocations resume (Observation 5).
#include "common.hpp"
#include "sim/platform.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

namespace {

using namespace gsight;

struct PhaseStats {
  std::array<double, 9> p99_ms{};
  std::array<double, 9> rate{};  // completions per second
};

// One long run: [0, 40) baseline is a separate run; the interference run
// measures "during" on [10, 40) and "after control" on [50, 80).
struct CaseResult {
  PhaseStats baseline;
  PhaseStats during;
  PhaseStats after;
};

PhaseStats window_stats(const sim::Platform& platform, std::size_t sn_id,
                        double t0, double t1) {
  PhaseStats out;
  for (std::size_t fn = 0; fn < 9; ++fn) {
    std::vector<double> lat;
    for (const auto& [t, l] : platform.stats(sn_id).fn_latency[fn]) {
      if (t >= t0 && t < t1) lat.push_back(l);
    }
    out.rate[fn] = static_cast<double>(lat.size()) / (t1 - t0);
    out.p99_ms[fn] = stats::percentile(std::move(lat), 99.0) * 1e3;
  }
  return out;
}

CaseResult run_case(std::size_t interfered_fn) {
  const double qps = 85.0;
  auto make_platform = [&](std::uint64_t seed) {
    sim::PlatformConfig pc;
    pc.servers = 9;
    pc.server = sim::ServerConfig::socket();
    pc.seed = seed;
    pc.instance.startup_cores = 0.0;
    pc.instance.startup_disk_mbps = 0.0;
    return sim::Platform(pc);
  };
  auto deploy_sn = [&](sim::Platform& platform) {
    auto sn = wl::social_network();
    for (auto& fn : sn.functions) fn.cold_start_s = 0.0;
    std::vector<std::size_t> placement(9);
    for (std::size_t i = 0; i < 9; ++i) placement[i] = i;
    return platform.deploy(sn, placement);
  };

  CaseResult result;
  {
    auto platform = make_platform(7);
    const std::size_t sn_id = deploy_sn(platform);
    platform.set_open_loop(sn_id, qps);
    platform.run_until(40.0);
    result.baseline = window_stats(platform, sn_id, 10.0, 40.0);
  }
  {
    auto platform = make_platform(7);
    const std::size_t sn_id = deploy_sn(platform);
    const auto mm = wl::matmul(10.0);
    const std::size_t co = platform.deploy(mm, {interfered_fn});
    platform.submit_job(co);
    platform.set_open_loop(sn_id, qps);
    platform.run_until(40.0);
    result.during = window_stats(platform, sn_id, 10.0, 40.0);
    platform.abort_executions(co);  // local control at t = 40
    platform.run_until(80.0);
    result.after = window_stats(platform, sn_id, 50.0, 80.0);
  }
  return result;
}

void print_case(bench::Run& run, const char* key, const char* title,
                std::size_t interfered_fn) {
  const auto sn = wl::social_network();
  bench::header(title);
  const auto r = run_case(interfered_fn);
  std::printf("%-22s | %10s %10s %10s | %8s %8s %8s\n", "function",
              "base p99", "intf p99", "ctrl p99", "base r/s", "intf r/s",
              "ctrl r/s");
  bench::rule();
  for (std::size_t fn = 0; fn < 9; ++fn) {
    std::printf("%-22s | %10.2f %10.2f %10.2f | %8.1f %8.1f %8.1f%s\n",
                sn.functions[fn].name.c_str(), r.baseline.p99_ms[fn],
                r.during.p99_ms[fn], r.after.p99_ms[fn], r.baseline.rate[fn],
                r.during.rate[fn], r.after.rate[fn],
                fn == interfered_fn ? "  <- interfered" : "");
  }
  bench::rule();
  // Quantify the propagation claims.
  std::size_t others_lower = 0;
  for (std::size_t fn = 0; fn < 9; ++fn) {
    if (fn == interfered_fn) continue;
    if (r.during.p99_ms[fn] <= r.baseline.p99_ms[fn] * 1.02) ++others_lower;
  }
  std::size_t others_rebound = 0;
  for (std::size_t fn = 0; fn < 9; ++fn) {
    if (fn == interfered_fn) continue;
    if (r.after.p99_ms[fn] > r.during.p99_ms[fn] * 1.02) ++others_rebound;
  }
  std::printf("interfered fn p99: %.1fx baseline;  %zu/8 other functions at or "
              "below baseline during interference (Obs 4);  control restores "
              "interfered fn to %.1fx baseline while %zu/8 others re-rise as "
              "invocations resume (Obs 5)\n",
              r.during.p99_ms[interfered_fn] /
                  r.baseline.p99_ms[interfered_fn],
              others_lower,
              r.after.p99_ms[interfered_fn] /
                  r.baseline.p99_ms[interfered_fn],
              others_rebound);
  run.result(std::string(key) + ".intf_p99_x_baseline",
             r.during.p99_ms[interfered_fn] /
                 r.baseline.p99_ms[interfered_fn]);
  run.result(std::string(key) + ".others_at_or_below_baseline",
             static_cast<double>(others_lower));
  run.result(std::string(key) + ".others_rebound_after_control",
             static_cast<double>(others_rebound));
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig4_propagation");
  print_case(run, "compose_post",
             "Figure 4(a): interference & control at (1) compose-post",
             wl::kComposePost);
  print_case(run, "compose_and_upload",
             "Figure 4(b): interference & control at (6) compose-and-upload",
             wl::kComposeAndUpload);
  std::printf("\n[bench_fig4_propagation done in %.1f s]\n", total.seconds());
  return 0;
}
