// Figure 11 — scheduling case study: CDFs and means of function density
// (instances per core), cluster CPU utilisation and memory utilisation
// over an Azure-trace-driven run, for Gsight vs Pythia(BestFit) vs
// WorstFit. Each scheduler runs as a GSIGHT_REPS-replication campaign
// (default 1); means carry a 95% CI when replicated.
// Paper: Gsight densities +18.79% over Pythia and +48.48% over WorstFit;
// CPU util +30.02%/+67.51%; memory util +31.04%/+76.91%.
#include "sched_study.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace gsight;

void print_cdf(const char* title, const std::vector<double>& samples) {
  std::printf("%s CDF: ", title);
  for (const double q : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("p%.0f=%.4f ", q, stats::percentile(samples, q));
  }
  std::printf("\n");
}

double metric_mean(const sched::CampaignResult& c, const std::string& name) {
  const auto* m = c.find(name);
  return m != nullptr ? m->mean : 0.0;
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig11_scheduling");
  auto setup = bench::prepare_study();
  std::printf("[setup] stream built, curve knee=%.3f, %.1f s\n",
              setup->curve->knee_ipc(), total.seconds());

  const std::size_t reps = bench::env_reps();
  const auto campaigns =
      bench::run_all_campaigns(*setup, reps, bench::campaign_options());

  bench::header("Figure 11: density / CPU / memory utilisation by scheduler");
  for (const auto& c : campaigns) {
    // CDFs come from replication 0; scalar rows are means ± CI over reps.
    const auto& r0 = c.reports.front();
    std::printf("\n[%s] reps=%zu requests=%llu failed=%llu jobs=%llu "
                "scale-outs=%llu cold-starts=%llu (rep 0)\n",
                c.scheduler.c_str(), c.replications,
                static_cast<unsigned long long>(r0.requests_completed),
                static_cast<unsigned long long>(r0.requests_failed),
                static_cast<unsigned long long>(r0.jobs_completed),
                static_cast<unsigned long long>(r0.scale_outs),
                static_cast<unsigned long long>(r0.cold_starts));
    const auto* density = c.find("mean_density");
    const auto* cpu = c.find("cpu_utilization");
    const auto* mem = c.find("mem_utilization");
    std::printf("  mean density %.4f±%.4f inst/core | mean CPU util "
                "%.3f±%.3f | mean mem util %.3f±%.3f\n",
                density->mean, density->ci95, cpu->mean, cpu->ci95, mem->mean,
                mem->ci95);
    print_cdf("  density", r0.density_samples);
    print_cdf("  cpu    ", r0.cpu_util_samples);
    print_cdf("  memory ", r0.mem_util_samples);
    c.write_into(run.report(), c.scheduler + ".");
  }
  bench::rule();
  const auto& g = campaigns[0];
  const auto& p = campaigns[1];
  const auto& w = campaigns[2];
  const double gd = metric_mean(g, "mean_density");
  const double pd = metric_mean(p, "mean_density");
  const double wd = metric_mean(w, "mean_density");
  std::printf("Gsight density : +%.2f%% vs Pythia (paper +18.79%%), +%.2f%% "
              "vs WorstFit (paper +48.48%%)\n",
              100.0 * (gd / pd - 1.0), 100.0 * (gd / wd - 1.0));
  std::printf("Gsight CPU util: +%.2f%% vs Pythia (paper +30.02%%), +%.2f%% "
              "vs WorstFit (paper +67.51%%)\n",
              100.0 * (metric_mean(g, "cpu_utilization") /
                           metric_mean(p, "cpu_utilization") -
                       1.0),
              100.0 * (metric_mean(g, "cpu_utilization") /
                           metric_mean(w, "cpu_utilization") -
                       1.0));
  std::printf("Gsight mem util: +%.2f%% vs Pythia (paper +31.04%%), +%.2f%% "
              "vs WorstFit (paper +76.91%%)\n",
              100.0 * (metric_mean(g, "mem_utilization") /
                           metric_mean(p, "mem_utilization") -
                       1.0),
              100.0 * (metric_mean(g, "mem_utilization") /
                           metric_mean(w, "mem_utilization") -
                       1.0));
  run.result("density_gain_vs_pythia_pct", 100.0 * (gd / pd - 1.0), "%");
  run.result("density_gain_vs_worstfit_pct", 100.0 * (gd / wd - 1.0), "%");

  std::printf("\n[bench_fig11_scheduling done in %.1f s]\n", total.seconds());
  return 0;
}
