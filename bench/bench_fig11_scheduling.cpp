// Figure 11 — scheduling case study: CDFs and means of function density
// (instances per core), cluster CPU utilisation and memory utilisation
// over an Azure-trace-driven run, for Gsight vs Pythia(BestFit) vs
// WorstFit.
// Paper: Gsight densities +18.79% over Pythia and +48.48% over WorstFit;
// CPU util +30.02%/+67.51%; memory util +31.04%/+76.91%.
#include "sched_study.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace gsight;

void print_cdf(const char* title, const std::vector<double>& samples) {
  std::printf("%s CDF: ", title);
  for (const double q : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("p%.0f=%.4f ", q, stats::percentile(samples, q));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig11_scheduling");
  auto setup = bench::prepare_study();
  std::printf("[setup] predictors trained, curve knee=%.3f, %.1f s\n",
              setup->curve->knee_ipc(), total.seconds());

  const auto reports = bench::run_all_schedulers(*setup);

  bench::header("Figure 11: density / CPU / memory utilisation by scheduler");
  for (const auto& r : reports) {
    std::printf("\n[%s]  requests=%llu failed=%llu jobs=%llu scale-outs=%llu "
                "cold-starts=%llu\n",
                r.scheduler.c_str(),
                static_cast<unsigned long long>(r.requests_completed),
                static_cast<unsigned long long>(r.requests_failed),
                static_cast<unsigned long long>(r.jobs_completed),
                static_cast<unsigned long long>(r.scale_outs),
                static_cast<unsigned long long>(r.cold_starts));
    std::printf("  mean density %.4f inst/core | mean CPU util %.3f | mean "
                "mem util %.3f\n",
                r.mean_density(), r.mean_cpu_util(), r.mean_mem_util());
    print_cdf("  density", r.density_samples);
    print_cdf("  cpu    ", r.cpu_util_samples);
    print_cdf("  memory ", r.mem_util_samples);
    const std::string prefix = r.scheduler + ".";
    run.result(prefix + "mean_density", r.mean_density(), "inst/core");
    run.result(prefix + "mean_cpu_util", r.mean_cpu_util());
    run.result(prefix + "mean_mem_util", r.mean_mem_util());
    run.result(prefix + "requests_completed",
               static_cast<double>(r.requests_completed));
    run.result(prefix + "cold_starts", static_cast<double>(r.cold_starts));
  }
  bench::rule();
  const auto& g = reports[0];
  const auto& p = reports[1];
  const auto& w = reports[2];
  std::printf("Gsight density : +%.2f%% vs Pythia (paper +18.79%%), +%.2f%% "
              "vs WorstFit (paper +48.48%%)\n",
              100.0 * (g.mean_density() / p.mean_density() - 1.0),
              100.0 * (g.mean_density() / w.mean_density() - 1.0));
  std::printf("Gsight CPU util: +%.2f%% vs Pythia (paper +30.02%%), +%.2f%% "
              "vs WorstFit (paper +67.51%%)\n",
              100.0 * (g.mean_cpu_util() / p.mean_cpu_util() - 1.0),
              100.0 * (g.mean_cpu_util() / w.mean_cpu_util() - 1.0));
  std::printf("Gsight mem util: +%.2f%% vs Pythia (paper +31.04%%), +%.2f%% "
              "vs WorstFit (paper +76.91%%)\n",
              100.0 * (g.mean_mem_util() / p.mean_mem_util() - 1.0),
              100.0 * (g.mean_mem_util() / w.mean_mem_util() - 1.0));
  run.result("density_gain_vs_pythia_pct",
             100.0 * (g.mean_density() / p.mean_density() - 1.0), "%");
  run.result("density_gain_vs_worstfit_pct",
             100.0 * (g.mean_density() / w.mean_density() - 1.0), "%");

  std::printf("\n[bench_fig11_scheduling done in %.1f s]\n", total.seconds());
  return 0;
}
