// Shared plumbing for the reproduction benches: paper-scale configs,
// table printing, and timing helpers. Every bench is a standalone binary
// that prints the rows/series of one table or figure from the paper.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/trainer.hpp"
#include "ml/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"

namespace gsight::bench {

/// Campaign thread budget from the environment (read here in bench/,
/// where getenv is allowed): GSIGHT_THREADS=N caps the fan-out, 1 forces
/// serial, unset/0 uses all hardware threads. Thread count never changes
/// bench numbers (campaigns are bit-identical across thread counts), only
/// the wall-clock.
inline std::size_t env_threads() {
  if (const char* s = std::getenv("GSIGHT_THREADS")) {
    return static_cast<std::size_t>(std::strtoul(s, nullptr, 10));
  }
  return 0;
}

/// Replication count for the scheduling campaigns (fig11/fig12):
/// GSIGHT_REPS=N runs each scheduler N times on derived seeds and reports
/// mean ± 95% CI. Default 1 keeps the default bench wall-clock flat.
inline std::size_t env_reps() {
  if (const char* s = std::getenv("GSIGHT_REPS")) {
    const auto n = static_cast<std::size_t>(std::strtoul(s, nullptr, 10));
    return n > 0 ? n : 1;
  }
  return 1;
}

/// CampaignOptions honouring GSIGHT_THREADS.
inline core::CampaignOptions campaign_options() {
  core::CampaignOptions opts;
  opts.threads = env_threads();
  return opts;
}

/// The common bench pattern: a BuildRequest wired to GSIGHT_THREADS.
inline core::BuildRequest build_request(core::ColocationClass cls,
                                        core::QosKind qos,
                                        std::size_t count) {
  core::BuildRequest request;
  request.cls = cls;
  request.qos = qos;
  request.count = count;
  request.campaign = campaign_options();
  return request;
}

/// Paper-scale dataset-builder configuration: 8 sockets as placement
/// units, encoder slots n=10 (dims = 32*10*8 + 20 = 2 580, §6.4).
inline core::BuilderConfig paper_builder_config() {
  core::BuilderConfig cfg;
  cfg.runner.servers = 8;
  cfg.runner.server = sim::ServerConfig::socket();
  cfg.runner.warmup_s = 5.0;
  cfg.runner.ls_measure_s = 40.0;
  cfg.runner.label_window_s = 5.0;
  cfg.encoder.servers = 8;
  cfg.encoder.max_workloads = 10;
  cfg.ls_qps_levels = {20.0, 40.0, 60.0};
  cfg.min_workloads = 2;
  cfg.max_workloads = 3;
  cfg.sc_scale = 0.12;
  cfg.profiler.ls_profile_s = 30.0;
  cfg.profiler.server = sim::ServerConfig::socket();
  return cfg;
}

/// A faster variant for the heavier sweeps (same geometry, shorter runs).
inline core::BuilderConfig quick_builder_config() {
  core::BuilderConfig cfg = paper_builder_config();
  cfg.runner.ls_measure_s = 25.0;
  cfg.runner.label_window_s = 2.5;
  cfg.profiler.ls_profile_s = 20.0;
  return cfg;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-bench harness: owns the RunReport and the optional trace sink.
///
///   int main() {
///     gsight::bench::Run run("fig14_overhead");
///     ...
///     run.result("forward_p50_us", v, "us");
///   }  // <- BENCH_fig14_overhead.json written here
///
/// Environment knobs (read here, in bench/, where wall clocks and getenv
/// are allowed — src/ is lint-clean of both):
///   GSIGHT_TRACE=<path>    — install a StreamTraceSink as the process
///                            default sink; any sim::Platform built
///                            without an explicit sink then emits a
///                            Chrome trace to <path>.
///   GSIGHT_BENCH_DIR=<dir> — where BENCH_<name>.json lands (default .);
///                            created if missing.
class Run {
 public:
  explicit Run(std::string name) : report_(std::move(name)) {
    if (const char* path = std::getenv("GSIGHT_TRACE")) {
      trace_file_.open(path);
      if (trace_file_) {
        trace_path_ = path;
        trace_sink_ = std::make_unique<obs::StreamTraceSink>(trace_file_);
        obs::set_default_trace_sink(trace_sink_.get());
      } else {
        std::fprintf(stderr, "[bench] cannot open GSIGHT_TRACE=%s\n", path);
      }
    }
  }

  ~Run() {
    if (trace_sink_) {
      obs::set_default_trace_sink(nullptr);
      trace_sink_->close();
      trace_sink_.reset();
      std::printf("[bench] chrome trace written to %s\n", trace_path_.c_str());
    }
    report_.set_wall_time_s(stopwatch_.seconds());
    const char* dir = std::getenv("GSIGHT_BENCH_DIR");
    if (dir != nullptr) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);  // best-effort
    }
    const std::string path = report_.write(dir != nullptr ? dir : ".");
    if (path.empty()) {
      std::fprintf(stderr, "[bench] failed to write run report\n");
    } else {
      std::printf("[bench] report written to %s\n", path.c_str());
    }
  }

  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  void result(const std::string& name, double value,
              const std::string& unit = "") {
    report_.add_result(name, value, unit);
  }
  obs::RunReport& report() { return report_; }
  double elapsed_s() const { return stopwatch_.seconds(); }

 private:
  obs::RunReport report_;
  Stopwatch stopwatch_;
  std::ofstream trace_file_;
  std::string trace_path_;
  std::unique_ptr<obs::StreamTraceSink> trace_sink_;
};

/// Train/test split over per-scenario sample groups (no window leakage).
inline std::pair<ml::Dataset, std::vector<const core::ScenarioSamples*>>
split_scenarios(const std::vector<core::ScenarioSamples>& samples,
                double train_fraction, std::size_t dim) {
  const auto cut =
      static_cast<std::size_t>(train_fraction * static_cast<double>(samples.size()));
  ml::Dataset train(dim);
  std::vector<const core::ScenarioSamples*> test;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i < cut) {
      for (double l : samples[i].labels) train.add(samples[i].features, l);
    } else {
      test.push_back(&samples[i]);
    }
  }
  return {std::move(train), std::move(test)};
}

/// MAPE of a scenario predictor over held-out scenario groups (predicting
/// each group's mean label).
inline double scenario_mape(const core::ScenarioPredictor& predictor,
                            const std::vector<const core::ScenarioSamples*>& test) {
  std::vector<double> truth, pred;
  for (const auto* s : test) {
    truth.push_back(stats::mean(s->labels));
    pred.push_back(predictor.predict(s->outcome.scenario));
  }
  return ml::mape(truth, pred);
}

}  // namespace gsight::bench
