// Shared setup for the Figures 11-12 scheduling study: trains the Gsight
// IPC predictor and the Pythia baseline on a colocation stream, builds the
// latency-IPC knee curve, profiles every app the experiment deploys, and
// runs the three schedulers (Gsight, Pythia-BestFit, WorstFit).
#pragma once

#include <memory>

#include "baselines/pythia.hpp"
#include "common.hpp"
#include "core/sla.hpp"
#include "sched/bestfit.hpp"
#include "sched/experiment.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sched/worstfit.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::bench {

struct StudySetup {
  prof::ProfileStore store;
  std::unique_ptr<core::GsightPredictor> gsight_ipc;
  std::unique_ptr<baselines::PythiaPredictor> pythia_ipc;
  std::unique_ptr<core::LatencyIpcCurve> curve;
  sched::ExperimentConfig experiment;
};

inline std::unique_ptr<StudySetup> prepare_study(std::uint64_t seed = 2021) {
  auto setup = std::make_unique<StudySetup>();
  auto cfg = quick_builder_config();
  cfg.sc_scale = 0.08;

  // --- Training stream for both predictors --------------------------------
  core::DatasetBuilder builder(&setup->store, cfg, seed);
  std::vector<core::ScenarioSamples> stream;
  for (const auto cls :
       {core::ColocationClass::kLsLs, core::ColocationClass::kLsScBg}) {
    auto part = builder.build(cls, core::QosKind::kIpc, 130);
    for (auto& s : part) stream.push_back(std::move(s));
  }

  core::PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  pcfg.model = core::ModelKind::kIRFR;
  setup->gsight_ipc = std::make_unique<core::GsightPredictor>(pcfg);
  setup->pythia_ipc = std::make_unique<baselines::PythiaPredictor>();

  ml::Dataset train(setup->gsight_ipc->encoder().dimension());
  // Knee curve on solo-normalised axes (x = IPC/solo IPC, y = p99/solo
  // p99) so all services pool onto one curve; see bench_fig7_knee.
  std::vector<core::LatencyIpcPoint> knee_points;
  for (const auto& s : stream) {
    for (double l : s.labels) {
      train.add(s.features, l);
      setup->pythia_ipc->observe(s.outcome.scenario, l);
    }
    const auto* profile = s.outcome.scenario.workloads[0].profile;
    if (profile->solo_mean_ipc <= 0.0 || profile->solo_e2e_p99_s <= 0.0) {
      continue;
    }
    for (const auto& [ipc, p99] : s.outcome.window_ipc_p99) {
      knee_points.push_back(
          {ipc / profile->solo_mean_ipc, p99 / profile->solo_e2e_p99_s});
    }
  }
  setup->gsight_ipc->train(train);
  setup->pythia_ipc->flush();
  setup->curve = std::make_unique<core::LatencyIpcCurve>(knee_points);

  // --- Profiles the experiment looks up by plain name ---------------------
  prof::SoloProfilerConfig spc = cfg.profiler;
  prof::SoloProfiler profiler(spc);
  for (const auto& app :
       {wl::social_network(), wl::e_commerce(), wl::matmul(3.0 * cfg.sc_scale),
        wl::dd(3.0 * cfg.sc_scale), wl::video_processing(4.0 * cfg.sc_scale),
        wl::iot_collector()}) {
    if (!setup->store.contains(app.name)) {
      setup->store.put(profiler.profile(app));
    }
  }

  // --- Experiment configuration -------------------------------------------
  sched::ExperimentConfig& ec = setup->experiment;
  ec.servers = 8;
  ec.server = sim::ServerConfig::socket();
  ec.duration_s = 480.0;
  ec.sample_period_s = 2.0;
  ec.sla_window_s = 10.0;
  ec.sc_job_period_s = 30.0;
  ec.sc_scale = cfg.sc_scale;
  ec.trace.base_qps = 60.0;
  ec.trace.day_seconds = 480.0;
  ec.trace.diurnal_amplitude = 0.55;
  ec.autoscaler.tick_s = 5.0;
  ec.autoscaler.max_replicas = 24;
  ec.seed = seed ^ 0xABCD;
  return setup;
}

inline std::vector<sched::ExperimentReport> run_all_schedulers(
    StudySetup& setup) {
  sched::SchedulingExperiment experiment(&setup.store, setup.experiment);
  experiment.set_sla_curve(setup.curve.get());

  std::vector<sched::ExperimentReport> reports;
  {
    // Gsight runs with its Figure 6 feedback loop: the predictor absorbs
    // measured IPC under the live deployment every SLA window.
    sched::GsightSchedulerConfig gc;
    gc.sla_margin = 0.85;
    sched::GsightScheduler scheduler(setup.gsight_ipc.get(), gc);
    reports.push_back(experiment.run(scheduler, setup.gsight_ipc.get()));
  }
  {
    // Same margin as Gsight: what differentiates the two is prediction
    // quality — Pythia's workload-level model both over-refuses safe
    // placements and over-admits harmful ones.
    sched::BestFitConfig bf;
    bf.sla_margin = 0.85;
    sched::BestFitScheduler scheduler(setup.pythia_ipc.get(), bf);
    reports.push_back(experiment.run(scheduler, setup.pythia_ipc.get()));
  }
  {
    sched::WorstFitScheduler scheduler;
    reports.push_back(experiment.run(scheduler));
  }
  return reports;
}

}  // namespace gsight::bench
