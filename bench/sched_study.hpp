// Shared setup for the Figures 11-12 scheduling study: builds the
// predictor training stream and the latency-IPC knee curve, profiles every
// app the experiment deploys, and runs the three schedulers (Gsight,
// Pythia-BestFit, WorstFit) as multi-replication sched::Campaigns.
// Predictors are trained *per replication* (online learning mutates them,
// so parallel replications must not share one).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/pythia.hpp"
#include "common.hpp"
#include "core/sla.hpp"
#include "sched/bestfit.hpp"
#include "sched/campaign.hpp"
#include "sched/experiment.hpp"
#include "sched/gsight_scheduler.hpp"
#include "sched/worstfit.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/ecommerce.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"

namespace gsight::bench {

/// Sub-stream of the study seed feeding the experiment (DESIGN.md §9).
inline constexpr std::uint64_t kExperimentSeedStream = 1;

struct StudySetup {
  prof::ProfileStore store;
  /// Colocation training stream both predictors learn from.
  std::vector<core::ScenarioSamples> stream;
  core::PredictorConfig pcfg;
  std::unique_ptr<core::LatencyIpcCurve> curve;
  sched::ExperimentConfig experiment;
};

inline std::unique_ptr<StudySetup> prepare_study(std::uint64_t seed = 2021) {
  auto setup = std::make_unique<StudySetup>();
  auto cfg = quick_builder_config();
  cfg.sc_scale = 0.08;

  // --- Training stream for both predictors --------------------------------
  core::DatasetBuilder builder(&setup->store, cfg, seed);
  for (const auto cls :
       {core::ColocationClass::kLsLs, core::ColocationClass::kLsScBg}) {
    auto part = builder.build(build_request(cls, core::QosKind::kIpc, 130));
    for (auto& s : part) setup->stream.push_back(std::move(s));
  }

  setup->pcfg.encoder = cfg.encoder;
  setup->pcfg.model = core::ModelKind::kIRFR;

  // Knee curve on solo-normalised axes (x = IPC/solo IPC, y = p99/solo
  // p99) so all services pool onto one curve; see bench_fig7_knee.
  std::vector<core::LatencyIpcPoint> knee_points;
  for (const auto& s : setup->stream) {
    const auto* profile = s.outcome.scenario.workloads[0].profile;
    if (profile->solo_mean_ipc <= 0.0 || profile->solo_e2e_p99_s <= 0.0) {
      continue;
    }
    for (const auto& [ipc, p99] : s.outcome.window_ipc_p99) {
      knee_points.push_back(
          {ipc / profile->solo_mean_ipc, p99 / profile->solo_e2e_p99_s});
    }
  }
  setup->curve = std::make_unique<core::LatencyIpcCurve>(knee_points);

  // --- Profiles the experiment looks up by plain name ---------------------
  // Only the apps the dataset phase has not already profiled; the batch
  // fans out across GSIGHT_THREADS like the builder does.
  std::vector<prof::ProfileRequest> missing;
  for (const auto& app :
       {wl::social_network(), wl::e_commerce(), wl::matmul(3.0 * cfg.sc_scale),
        wl::dd(3.0 * cfg.sc_scale), wl::video_processing(4.0 * cfg.sc_scale),
        wl::iot_collector()}) {
    if (!setup->store.contains(app.name)) {
      prof::ProfileRequest request;
      request.app = app;
      missing.push_back(std::move(request));
    }
  }
  const prof::ProfileStore profiled =
      core::profile_all(cfg.profiler, missing, campaign_options());
  for (const auto& [name, profile] : profiled.all()) {
    setup->store.put(profile);
  }

  // --- Experiment configuration -------------------------------------------
  sched::ExperimentConfig& ec = setup->experiment;
  ec.servers = 8;
  ec.server = sim::ServerConfig::socket();
  ec.duration_s = 480.0;
  ec.sample_period_s = 2.0;
  ec.sla_window_s = 10.0;
  ec.sc_job_period_s = 30.0;
  ec.sc_scale = cfg.sc_scale;
  ec.trace.base_qps = 60.0;
  ec.trace.day_seconds = 480.0;
  ec.trace.diurnal_amplitude = 0.55;
  ec.autoscaler.tick_s = 5.0;
  ec.autoscaler.max_replicas = 24;
  ec.seed = stats::SeedStream::derive(seed, kExperimentSeedStream);
  return setup;
}

/// Fresh Gsight IPC predictor trained on the study stream.
inline std::unique_ptr<core::GsightPredictor> train_gsight(
    const StudySetup& setup) {
  auto predictor = std::make_unique<core::GsightPredictor>(setup.pcfg);
  ml::Dataset train(predictor->encoder().dimension());
  for (const auto& s : setup.stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  predictor->train(train);
  return predictor;
}

/// Fresh Pythia baseline trained on the same stream.
inline std::unique_ptr<baselines::PythiaPredictor> train_pythia(
    const StudySetup& setup) {
  auto predictor = std::make_unique<baselines::PythiaPredictor>();
  for (const auto& s : setup.stream) {
    for (double l : s.labels) predictor->observe(s.outcome.scenario, l);
  }
  predictor->flush();
  return predictor;
}

/// The three §6.3 schedulers as replicate factories. Each replication
/// trains its own predictor: the experiment's Figure 6 feedback loop
/// mutates it, so replications (possibly parallel) must not share one.
inline std::vector<sched::ReplicateFactory> study_factories(
    const StudySetup& setup) {
  std::vector<sched::ReplicateFactory> factories;
  factories.push_back([&setup](std::size_t, std::uint64_t) {
    auto predictor = train_gsight(setup);
    sched::GsightSchedulerConfig gc;
    gc.sla_margin = 0.85;
    sched::Replicate r;
    r.online = predictor.get();
    r.scheduler =
        std::make_unique<sched::GsightScheduler>(predictor.get(), gc);
    r.keepalive = std::shared_ptr<core::GsightPredictor>(std::move(predictor));
    return r;
  });
  factories.push_back([&setup](std::size_t, std::uint64_t) {
    // Same margin as Gsight: what differentiates the two is prediction
    // quality — Pythia's workload-level model both over-refuses safe
    // placements and over-admits harmful ones.
    auto predictor = train_pythia(setup);
    sched::BestFitConfig bf;
    bf.sla_margin = 0.85;
    sched::Replicate r;
    r.online = predictor.get();
    r.scheduler =
        std::make_unique<sched::BestFitScheduler>(predictor.get(), bf);
    r.keepalive =
        std::shared_ptr<baselines::PythiaPredictor>(std::move(predictor));
    return r;
  });
  factories.push_back([](std::size_t, std::uint64_t) {
    sched::Replicate r;
    r.scheduler = std::make_unique<sched::WorstFitScheduler>();
    return r;
  });
  return factories;
}

/// Run every scheduler as a `reps`-replication campaign (GSIGHT_REPS in
/// the benches). Results come back in factory order: Gsight, Pythia
/// BestFit, WorstFit.
inline std::vector<sched::CampaignResult> run_all_campaigns(
    StudySetup& setup, std::size_t reps,
    const core::CampaignOptions& options = {}) {
  sched::CampaignConfig cc;
  cc.experiment = setup.experiment;
  cc.replications = reps > 0 ? reps : 1;
  cc.campaign = options;
  sched::Campaign campaign(&setup.store, cc);
  campaign.set_sla_curve(setup.curve.get());
  std::vector<sched::CampaignResult> results;
  for (const auto& factory : study_factories(setup)) {
    results.push_back(campaign.run(factory));
  }
  return results;
}

}  // namespace gsight::bench
