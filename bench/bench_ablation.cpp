// Ablations of Gsight's design choices (DESIGN.md §4):
//   1. spatial overlap coding on/off        (Observation 2's value)
//   2. temporal overlap coding on/off       (Observation 3's value)
//   3. canonical server ordering on/off     (sample efficiency)
//   4. incremental refresh fraction sweep   (update cost vs accuracy)
//   5. the knee filter for tail latency     (paper: 28.6% -> 18.7%)
#include "common.hpp"
#include "core/sla.hpp"
#include "ml/incremental_forest.hpp"
#include "ml/pca.hpp"

namespace {

using namespace gsight;

double prequential_irfr(const std::vector<core::ScenarioSamples>& stream_raw,
                        const core::EncoderConfig& enc, core::QosKind qos,
                        double refresh_fraction = 0.25,
                        double ipc_floor = 0.0) {
  // Re-encode under the requested encoder configuration (features in the
  // stream were built with the default encoder).
  core::Encoder encoder(enc);
  ml::IncrementalForestConfig fc;
  fc.forest.n_trees = 80;
  fc.forest.tree.split_mode = ml::SplitMode::kRandom;
  fc.forest.tree.max_features = 128;
  fc.refresh_fraction = refresh_fraction;
  core::PredictorConfig pcfg;
  pcfg.encoder = enc;
  pcfg.qos = qos;
  pcfg.update_batch = 64;
  core::GsightPredictor predictor(
      pcfg, std::make_unique<ml::IncrementalForest>(fc, 1));

  const std::size_t warm = stream_raw.size() / 2;
  std::vector<double> truth, pred;
  for (std::size_t i = 0; i < stream_raw.size(); ++i) {
    const auto& s = stream_raw[i];
    const auto& labels =
        qos == core::QosKind::kIpc ? s.labels : s.outcome.window_p99;
    if (labels.empty()) continue;
    // Knee filter: drop samples whose measured IPC (relative to the
    // target's solo IPC) sits below the floor — latency is unpredictable
    // there (§3.2).
    if (ipc_floor > 0.0) {
      const double solo = s.outcome.scenario.workloads[0].profile->solo_mean_ipc;
      if (solo > 0.0 && s.outcome.mean_ipc / solo < ipc_floor) continue;
    }
    if (i >= warm) {
      truth.push_back(stats::mean(labels));
      pred.push_back(predictor.predict(s.outcome.scenario));
    }
    for (double l : labels) predictor.observe(s.outcome.scenario, l);
  }
  predictor.flush();
  return ml::mape(truth, pred);
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("ablation");
  auto cfg = bench::quick_builder_config();
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, /*seed=*/1919);
  std::vector<core::ScenarioSamples> stream;
  for (const auto cls :
       {core::ColocationClass::kLsLs, core::ColocationClass::kLsScBg}) {
    auto part = builder.build(bench::build_request(cls, core::QosKind::kIpc, 150));
    for (auto& s : part) stream.push_back(std::move(s));
  }
  std::printf("[setup] %zu scenarios in %.1f s\n", stream.size(),
              total.seconds());

  bench::header("Ablation 1-3: overlap-coding switches (online IPC error %)");
  struct Variant {
    const char* name;
    bool spatial, temporal, canonical;
  };
  for (const auto& v : std::initializer_list<Variant>{
           {"full Gsight coding", true, true, true},
           {"no spatial coding", false, true, true},
           {"no temporal coding", true, false, true},
           {"no canonical order", true, true, false},
           {"neither (monolithic)", false, false, true}}) {
    core::EncoderConfig enc = cfg.encoder;
    enc.spatial_coding = v.spatial;
    enc.temporal_coding = v.temporal;
    enc.canonical_server_order = v.canonical;
    const double err = prequential_irfr(stream, enc, core::QosKind::kIpc);
    std::printf("%-24s %8.2f\n", v.name, err);
    run.result(std::string("coding.") + v.name + ".ipc_error_pct", err, "%");
  }

  bench::header("Ablation 4: incremental refresh fraction (IPC error % / "
                "relative update cost)");
  for (const double frac : {0.1, 0.25, 0.5, 1.0}) {
    bench::Stopwatch sw;
    const double err =
        prequential_irfr(stream, cfg.encoder, core::QosKind::kIpc, frac);
    std::printf("refresh %.0f%% of trees: error %6.2f%%  (wall %5.1f s)\n",
                frac * 100.0, err, sw.seconds());
    run.result("refresh_" + std::to_string(static_cast<int>(frac * 100.0)) +
                   "pct.ipc_error_pct",
               err, "%");
  }

  bench::header("Ablation 5: PCA feature reduction (the paper's \u00a76.4 "
                "future-work item)");
  {
    // Batch protocol: train on the first half (raw vs PCA-reduced
    // features), evaluate scenario-mean IPC on the second half.
    const std::size_t cut = stream.size() / 2;
    ml::Dataset train_raw(stream[0].features.size());
    for (std::size_t i = 0; i < cut; ++i) {
      for (double l : stream[i].labels) {
        train_raw.add(stream[i].features, l);
      }
    }
    // PCA must run on standardised features: the raw code mixes scales
    // (context switches ~1e3 vs IPC ~1), and unstandardised variance
    // would be owned entirely by the large-scale dimensions.
    ml::StandardScaler scaler;
    scaler.partial_fit(train_raw);
    const ml::Dataset train_scaled = scaler.transform(train_raw);
    auto evaluate = [&](const ml::Dataset& train, const ml::Pca* pca) {
      ml::IncrementalForestConfig fc;
      fc.forest.n_trees = 80;
      fc.forest.tree.split_mode = ml::SplitMode::kRandom;
      ml::IncrementalForest forest(fc, 1);
      bench::Stopwatch sw;
      forest.partial_fit(train);
      const double fit_s = sw.seconds();
      std::vector<double> truth, pred;
      for (std::size_t i = cut; i < stream.size(); ++i) {
        if (stream[i].labels.empty()) continue;
        truth.push_back(stats::mean(stream[i].labels));
        const auto& x = stream[i].features;
        pred.push_back(pca != nullptr
                           ? forest.predict(pca->transform(scaler.transform(x)))
                           : forest.predict(x));
      }
      std::printf("  error %6.2f%%  fit %5.1f s\n", ml::mape(truth, pred),
                  fit_s);
    };
    std::printf("raw %zu dims:\n", stream[0].features.size());
    evaluate(train_raw, nullptr);
    for (const std::size_t k : {32u, 96u}) {
      ml::PcaConfig pc;
      pc.components = k;
      ml::Pca pca(pc);
      pca.fit(train_scaled);
      std::printf("PCA %zu dims (%.1f%% variance kept):\n", pca.components(),
                  100.0 * pca.explained_variance_ratio());
      evaluate(pca.transform(train_scaled), &pca);
    }
  }

  bench::header("Ablation 6: knee filter for tail-latency prediction");
  // Determine the knee from the stream itself, on solo-normalised axes
  // (see bench_fig7_knee).
  std::vector<core::LatencyIpcPoint> pts;
  for (const auto& s : stream) {
    const auto* profile = s.outcome.scenario.workloads[0].profile;
    if (profile->solo_mean_ipc <= 0.0 || profile->solo_e2e_p99_s <= 0.0) {
      continue;
    }
    for (const auto& [ipc, p99] : s.outcome.window_ipc_p99) {
      pts.push_back({ipc / profile->solo_mean_ipc,
                     p99 / profile->solo_e2e_p99_s});
    }
  }
  const core::LatencyIpcCurve curve(pts);
  const double unfiltered =
      prequential_irfr(stream, cfg.encoder, core::QosKind::kTailLatency);
  const double filtered = prequential_irfr(
      stream, cfg.encoder, core::QosKind::kTailLatency, 0.25,
      curve.knee_ipc());
  std::printf("tail-latency error: %.2f%% unfiltered -> %.2f%% after "
              "dropping below-knee samples (paper: 28.6%% -> 18.7%%)\n",
              unfiltered, filtered);
  run.result("tail_latency_error_unfiltered_pct", unfiltered, "%");
  run.result("tail_latency_error_knee_filtered_pct", filtered, "%");

  std::printf("\n[bench_ablation done in %.1f s]\n", total.seconds());
  return 0;
}
