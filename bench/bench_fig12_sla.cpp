// Figure 12 — SLA guarantees under Gsight scheduling. SLAs follow §6.3:
// each LS app's target is its solo p99 under sustained load; scheduling
// enforces the IPC floor derived through the latency-IPC curve (Figure 7).
// Each scheduler runs as a GSIGHT_REPS-replication campaign (default 1);
// the satisfied-window fractions are means ± 95% CI over replications.
// Paper: the social network meets its SLA in 95.39% of windows and
// e-commerce in 93.33% under Gsight.
#include "sched_study.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("fig12_sla");
  auto setup = bench::prepare_study(/*seed=*/2022);
  const std::size_t reps = bench::env_reps();
  const auto campaigns =
      bench::run_all_campaigns(*setup, reps, bench::campaign_options());

  bench::header("Figure 12: fraction of windows meeting the p99 SLA");
  std::printf("%-16s", "scheduler");
  for (const auto& app : campaigns[0].reports.front().sla) {
    std::printf(" %22s", app.app.c_str());
  }
  std::printf("\n");
  bench::rule();
  for (const auto& c : campaigns) {
    std::printf("%-16s", c.scheduler.c_str());
    for (const auto& app : c.reports.front().sla) {
      const auto* sat = c.find("sla_satisfied." + app.app);
      const auto* p99 = c.find("p99_latency." + app.app);
      std::printf(" %8.2f%%±%4.2f (p99 %3.0fms)", 100.0 * sat->mean,
                  100.0 * sat->ci95, p99->mean * 1e3);
      run.result(c.scheduler + "." + app.app + ".sla_satisfied_pct",
                 100.0 * sat->mean, "%");
      run.result(c.scheduler + "." + app.app + ".overall_p99_ms",
                 p99->mean * 1e3, "ms");
    }
    std::printf("\n");
    c.write_into(run.report(), c.scheduler + ".");
  }
  bench::rule();
  for (const auto& app : campaigns[0].reports.front().sla) {
    std::printf("SLA target %s: %.0f ms\n", app.app.c_str(),
                app.sla_p99_s * 1e3);
  }
  std::printf("paper: Gsight keeps the social network within SLA 95.39%% of "
              "the time and e-commerce 93.33%% (weak windows concentrate "
              "below the IPC knee)\n");

  std::printf("\n[bench_fig12_sla done in %.1f s]\n", total.seconds());
  return 0;
}
