// Figure 12 — SLA guarantees under Gsight scheduling. SLAs follow §6.3:
// each LS app's target is its solo p99 under sustained load; scheduling
// enforces the IPC floor derived through the latency-IPC curve (Figure 7).
// Paper: the social network meets its SLA in 95.39% of windows and
// e-commerce in 93.33% under Gsight.
#include "sched_study.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("fig12_sla");
  auto setup = bench::prepare_study(/*seed=*/2022);
  const auto reports = bench::run_all_schedulers(*setup);

  bench::header("Figure 12: fraction of windows meeting the p99 SLA");
  std::printf("%-16s", "scheduler");
  for (const auto& app : reports[0].sla) {
    std::printf(" %22s", app.app.c_str());
  }
  std::printf("\n");
  bench::rule();
  for (const auto& r : reports) {
    std::printf("%-16s", r.scheduler.c_str());
    for (const auto& app : r.sla) {
      std::printf(" %14.2f%% (p99 %3.0fms)", 100.0 * app.satisfied_fraction,
                  app.overall_p99_s * 1e3);
      run.result(r.scheduler + "." + app.app + ".sla_satisfied_pct",
                 100.0 * app.satisfied_fraction, "%");
      run.result(r.scheduler + "." + app.app + ".overall_p99_ms",
                 app.overall_p99_s * 1e3, "ms");
    }
    std::printf("\n");
  }
  bench::rule();
  for (const auto& app : reports[0].sla) {
    std::printf("SLA target %s: %.0f ms\n", app.app.c_str(),
                app.sla_p99_s * 1e3);
  }
  std::printf("paper: Gsight keeps the social network within SLA 95.39%% of "
              "the time and e-commerce 93.33%% (weak windows concentrate "
              "below the IPC knee)\n");

  std::printf("\n[bench_fig12_sla done in %.1f s]\n", total.seconds());
  return 0;
}
