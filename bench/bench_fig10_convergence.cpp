// Figure 10 — convergence of the incremental model.
// (a) function-level (serverless) vs workload-level (serverful) sample
//     granularity, isolated on the *same* scenario stream: the serverful
//     pipeline sees each workload as one aggregated container profile
//     with no per-server placement detail (spatial coding collapsed),
//     exactly the information loss Observation 6 describes.
//     Paper: 3.41/2.55/2.09 % after 1k/2k/3k serverless samples vs
//     6.5/4.74/3.75 % serverful — >= 3x faster convergence.
// (b) the serverless error keeps falling and stays stable (~1% at 9k).
// (c) error vs number of colocated workloads (2..6): below 3% throughout.
#include "common.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace gsight;

// Prequential error measured at checkpoints over a scenario stream.
std::vector<std::pair<std::size_t, double>> convergence_curve(
    const std::vector<core::ScenarioSamples>& stream,
    const core::EncoderConfig& enc,
    const std::vector<std::size_t>& checkpoints) {
  core::PredictorConfig cfg;
  cfg.encoder = enc;
  cfg.model = core::ModelKind::kIRFR;
  cfg.update_batch = 64;
  core::GsightPredictor predictor(cfg);

  std::vector<std::pair<std::size_t, double>> curve;
  std::size_t samples_seen = 0;
  std::size_t next_cp = 0;
  std::vector<double> truth, pred;
  // Rolling evaluation: predict each scenario before learning it; at each
  // checkpoint report the error over the window since the last checkpoint.
  for (const auto& s : stream) {
    if (s.labels.empty()) continue;
    truth.push_back(stats::mean(s.labels));
    pred.push_back(predictor.predict(s.outcome.scenario));
    for (double l : s.labels) predictor.observe(s.outcome.scenario, l);
    samples_seen += s.labels.size();
    if (next_cp < checkpoints.size() && samples_seen >= checkpoints[next_cp]) {
      // Error over the most recent half of predictions made so far.
      const std::size_t half = truth.size() / 2;
      const std::vector<double> t(truth.begin() + half, truth.end());
      const std::vector<double> p(pred.begin() + half, pred.end());
      curve.emplace_back(checkpoints[next_cp], ml::mape(t, p));
      ++next_cp;
    }
  }
  return curve;
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig10_convergence");
  auto cfg = bench::quick_builder_config();
  cfg.runner.label_window_s = 2.0;  // denser samples per scenario

  const std::vector<std::size_t> checkpoints = {500, 1000, 2000, 3000};

  // --- (a)+(b): serverless stream ----------------------------------------
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, /*seed=*/1212);
  bench::Stopwatch sw;
  std::vector<core::ScenarioSamples> serverless;
  for (const auto cls :
       {core::ColocationClass::kLsLs, core::ColocationClass::kLsScBg}) {
    auto part = builder.build(bench::build_request(cls, core::QosKind::kIpc, 170));
    for (auto& s : part) serverless.push_back(std::move(s));
  }
  // Interleave the two classes deterministically.
  {
    stats::Rng rng(1);
    std::vector<core::ScenarioSamples> shuffled;
    for (std::size_t i : rng.permutation(serverless.size())) {
      shuffled.push_back(std::move(serverless[i]));
    }
    serverless = std::move(shuffled);
  }
  std::printf("[setup] serverless stream: %zu scenarios in %.1f s\n",
              serverless.size(), sw.seconds());

  // Serverful (workload-level) view: the same stream encoded without
  // per-server structure — the paper's five serverful benchmarks live in
  // wl::serverful_suite(); what drives Figure 10(a) is the profiling
  // granularity, which this isolates cleanly.
  core::EncoderConfig workload_level = cfg.encoder;
  workload_level.spatial_coding = false;

  bench::header("Figure 10(a)+(b): IRFR convergence, serverless vs serverful "
                "(prediction error %)");
  const auto sless = convergence_curve(serverless, cfg.encoder, checkpoints);
  const auto sful = convergence_curve(serverless, workload_level, checkpoints);
  std::printf("%12s %14s %14s\n", "samples", "serverless", "serverful");
  bench::rule();
  auto curve_series = obs::Json::array();
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    std::printf("%12zu %14.2f %14.2f\n", checkpoints[i],
                i < sless.size() ? sless[i].second : -1.0,
                i < sful.size() ? sful[i].second : -1.0);
    auto row = obs::Json::object();
    row.set("samples", checkpoints[i]);
    if (i < sless.size()) row.set("serverless_error_pct", sless[i].second);
    if (i < sful.size()) row.set("serverful_error_pct", sful[i].second);
    curve_series.push_back(std::move(row));
  }
  run.report().add_series("convergence", std::move(curve_series));
  if (!sless.empty()) {
    run.result("serverless_final_error_pct", sless.back().second, "%");
  }
  if (!sful.empty()) {
    run.result("serverful_final_error_pct", sful.back().second, "%");
  }
  bench::rule();
  std::printf("paper: serverless 3.41/2.55/2.09%% at 1k/2k/3k vs serverful "
              "6.5/4.74/3.75%% — function-level profiles converge >=3x "
              "faster\n");

  // --- (c): error vs number of colocated workloads ------------------------
  bench::header("Figure 10(c): error vs number of colocated workloads");
  std::printf("%12s %12s %12s\n", "#workloads", "error(%)", "scenarios");
  bench::rule();
  for (std::size_t k = 2; k <= 6; ++k) {
    core::BuilderConfig kcfg = cfg;
    kcfg.min_workloads = k;
    kcfg.max_workloads = k;
    core::DatasetBuilder kbuilder(&store, kcfg,
                                  stats::SeedStream::derive(7000, k));
    // Larger colocations span a bigger scenario space; give the online
    // learner proportionally more of the stream before judging it.
    auto stream = kbuilder.build(bench::build_request(
        core::ColocationClass::kLsScBg, core::QosKind::kIpc,
        120 + 60 * (k - 2)));
    core::PredictorConfig pcfg;
    pcfg.encoder = kcfg.encoder;
    pcfg.model = core::ModelKind::kIRFR;
    pcfg.update_batch = 64;
    core::GsightPredictor predictor(pcfg);
    std::vector<double> truth, pred;
    const std::size_t warm = stream.size() / 2;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (stream[i].labels.empty()) continue;
      if (i >= warm) {
        truth.push_back(stats::mean(stream[i].labels));
        pred.push_back(predictor.predict(stream[i].outcome.scenario));
      }
      for (double l : stream[i].labels) {
        predictor.observe(stream[i].outcome.scenario, l);
      }
    }
    const double err = ml::mape(truth, pred);
    std::printf("%12zu %12.2f %12zu\n", k, err, stream.size());
    run.result("error_pct_at_" + std::to_string(k) + "_workloads", err, "%");
  }
  bench::rule();
  std::printf("paper: error stays below 3%% for any number of colocated "
              "workloads (2..10)\n");

  std::printf("\n[bench_fig10_convergence done in %.1f s]\n", total.seconds());
  return 0;
}
