// Figure 7 — the latency-IPC correlation knee. LS services are driven
// under varied QPS and varied spatial/temporal overlap; each label window
// contributes an (IPC, p99) point. Above the knee the two correlate
// strongly (the basis for scheduling on the IPC model, §6.3); below it
// tail latency decouples. Paper: only ~4.1% of samples sit below the knee.
#include "common.hpp"
#include "core/sla.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("fig7_knee");

  auto cfg = bench::quick_builder_config();
  cfg.ls_qps_levels = {25.0, 50.0, 75.0, 95.0};  // the top levels push some colocations past saturation
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, /*seed=*/777);

  // Axes are solo-normalised so services with different baseline IPCs pool
  // onto one curve: x = IPC / solo IPC, y = p99 / solo p99.
  std::vector<core::LatencyIpcPoint> points;
  for (const auto cls :
       {core::ColocationClass::kLsLs, core::ColocationClass::kLsScBg}) {
    const auto samples = builder.build(bench::build_request(cls, core::QosKind::kIpc, 120));
    for (const auto& s : samples) {
      const auto* profile = s.outcome.scenario.workloads[0].profile;
      if (profile->solo_mean_ipc <= 0.0 || profile->solo_e2e_p99_s <= 0.0) {
        continue;
      }
      for (const auto& [ipc, p99] : s.outcome.window_ipc_p99) {
        points.push_back({ipc / profile->solo_mean_ipc,
                          p99 / profile->solo_e2e_p99_s});
      }
    }
  }
  std::printf("collected %zu solo-normalised (IPC, p99) windows\n",
              points.size());

  core::LatencyIpcCurve curve(points);
  bench::header("Figure 7: latency-IPC curve (log-latency vs IPC)");
  // Print the curve as IPC-bucket medians.
  const auto& pts = curve.points();
  const std::size_t buckets = 14;
  std::printf("%10s %14s %14s %8s\n", "IPC/solo", "median p99/solo",
              "p95 p99/solo", "count");
  bench::rule();
  const double lo = pts.front().ipc, hi = pts.back().ipc;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double b_lo = lo + (hi - lo) * static_cast<double>(b) / buckets;
    const double b_hi = lo + (hi - lo) * static_cast<double>(b + 1) / buckets;
    std::vector<double> lat;
    for (const auto& p : pts) {
      if (p.ipc >= b_lo && p.ipc < b_hi) lat.push_back(p.p99_latency_s);
    }
    if (lat.empty()) continue;
    std::printf("%10.3f %14.2f %14.2f %8zu%s\n", 0.5 * (b_lo + b_hi),
                stats::percentile(lat, 50.0), stats::percentile(lat, 95.0),
                lat.size(),
                0.5 * (b_lo + b_hi) < curve.knee_ipc() ? "   [below knee]"
                                                       : "");
  }
  bench::rule();
  std::printf("knee IPC          : %.3f\n", curve.knee_ipc());
  std::printf("corr above knee   : %.3f (Pearson of IPC vs log p99)\n",
              curve.correlation_above_knee());
  std::printf("below-knee share  : %.1f%% of samples (paper: 4.1%%)\n",
              100.0 * curve.fraction_below_knee());
  // SLA transformation example (used by the schedulers in Figures 11-12):
  // a latency budget of 1.5x the solo p99 maps to a relative IPC floor.
  std::printf("latency->IPC floor: p99 budget 1.5x solo -> IPC >= %.3f x "
              "solo IPC\n",
              curve.ipc_for_latency(1.5));
  run.result("windows", static_cast<double>(points.size()));
  run.result("knee_ipc", curve.knee_ipc());
  run.result("corr_above_knee", curve.correlation_above_knee());
  run.result("below_knee_pct", 100.0 * curve.fraction_below_knee(), "%");

  std::printf("\n[bench_fig7_knee done in %.1f s]\n", total.seconds());
  return 0;
}
