// Figure 13 — recovery from workload drift: a model trained only on
// I/O-intensive workloads (social network, e-commerce) mispredicts the
// IPC of CPU-intensive serving (whose IPC is ~1.6x higher), then recovers
// through incremental updates.
// Paper: 43.9% error on arrival, down to 4.6% after 1 000 new samples.
#include "common.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace gsight;
  bench::Stopwatch total;
  bench::Run run("fig13_recovery");

  auto cfg = bench::quick_builder_config();
  cfg.runner.label_window_s = 2.0;
  prof::ProfileStore store;

  // I/O-intensive training domain: social network + e-commerce targets.
  core::BuilderConfig io_cfg = cfg;
  core::DatasetBuilder io_builder(&store, io_cfg, /*seed=*/1313);
  // CPU-intensive domain: ml-serving target only.
  // (Built by filtering the generic LS sampler's output by target name.)
  auto build_domain = [&](core::DatasetBuilder& builder, bool cpu_domain,
                          std::size_t want) {
    std::vector<core::ScenarioSamples> out;
    while (out.size() < want) {
      auto part = builder.build(bench::build_request(
          core::ColocationClass::kLsScBg, core::QosKind::kIpc, 32));
      for (auto& s : part) {
        const bool is_cpu =
            s.outcome.scenario.workloads[0].profile->app_name.rfind(
                "ml-serving", 0) == 0;
        if (is_cpu == cpu_domain && out.size() < want) {
          out.push_back(std::move(s));
        }
      }
    }
    return out;
  };
  bench::Stopwatch sw;
  auto io_stream = build_domain(io_builder, false, 150);
  auto cpu_stream = build_domain(io_builder, true, 120);
  std::printf("[setup] %zu I/O-intensive + %zu CPU-intensive scenarios in "
              "%.1f s\n",
              io_stream.size(), cpu_stream.size(), sw.seconds());

  core::PredictorConfig pcfg;
  pcfg.encoder = cfg.encoder;
  pcfg.model = core::ModelKind::kIRFR;
  pcfg.update_batch = 64;
  core::GsightPredictor predictor(pcfg);

  ml::Dataset train(predictor.encoder().dimension());
  for (const auto& s : io_stream) {
    for (double l : s.labels) train.add(s.features, l);
  }
  predictor.train(train);
  std::printf("trained on %zu I/O-intensive samples\n", train.size());

  bench::header("Figure 13: error on the CPU-intensive domain vs incremental "
                "updates");
  std::printf("%16s %12s\n", "updates(samples)", "error(%)");
  bench::rule();
  std::size_t absorbed = 0;
  std::size_t idx = 0;
  const std::size_t eval_count = 24;  // trailing scenarios reserved for eval
  const std::size_t updates_end = cpu_stream.size() - eval_count;
  auto eval_error = [&] {
    std::vector<double> truth, pred;
    for (std::size_t i = updates_end; i < cpu_stream.size(); ++i) {
      truth.push_back(stats::mean(cpu_stream[i].labels));
      pred.push_back(predictor.predict(cpu_stream[i].outcome.scenario));
    }
    return ml::mape(truth, pred);
  };
  const double fresh_error = eval_error();
  std::printf("%16zu %12.2f   <- fresh domain (paper: 43.9%%)\n", absorbed,
              fresh_error);
  run.result("fresh_domain_error_pct", fresh_error, "%");
  double final_error = fresh_error;
  const std::size_t report_every = 250;
  std::size_t next_report = report_every;
  while (idx < updates_end) {
    for (double l : cpu_stream[idx].labels) {
      predictor.observe(cpu_stream[idx].outcome.scenario, l);
      ++absorbed;
    }
    ++idx;
    if (absorbed >= next_report || idx == updates_end) {
      predictor.flush();
      final_error = eval_error();
      std::printf("%16zu %12.2f\n", absorbed, final_error);
      next_report += report_every;
      if (idx == updates_end) break;
    }
  }
  run.result("recovered_error_pct", final_error, "%");
  run.result("updates_absorbed", static_cast<double>(absorbed));
  bench::rule();
  std::printf("paper: 43.9%% -> 4.6%% after ~1 000 incremental samples\n");

  std::printf("\n[bench_fig13_recovery done in %.1f s]\n", total.seconds());
  return 0;
}
