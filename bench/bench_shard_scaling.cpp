// Shard-scaling bench (ROADMAP item 1): a 256-server estate under one
// compressed 24h diurnal Azure-like day, simulated two ways:
//
//   monolith — one cluster cell of 256 servers behind a single gateway.
//     Every forward pays an O(instances) backlog scan over all 256
//     instances, so the single control loop is the wall-clock bottleneck
//     at trace scale even with a provisioned (above-knee) front-end.
//   sharded — 8 cluster cells of 32 servers (per-cluster shards), each
//     with a private gateway scanning only its own 32 instances, advanced
//     in lockstep epochs with cross-cell handoffs through the
//     deterministic mailbox. Both estates carry the same aggregate load
//     and complete the same work (event counts agree within ~1%), so
//     events/sec compares equal work.
//
// Reported: aggregate events/sec for the monolith and for every lane
// count in {1, 2, 4, 8} on the 8-cell topology, the sharded-vs-monolith
// speedup, and a byte-identity bit confirming all lane counts (serial and
// thread-pooled) produced identical state digests. Lane counts change
// wall-clock only; the digest proves it.
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/json.hpp"
#include "sim/sharded_engine.hpp"

namespace {

using namespace gsight;

struct Measured {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::string digest;
  double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

sim::ShardedEngineConfig estate(std::size_t cells, std::size_t servers,
                                std::size_t lanes, std::size_t threads) {
  sim::ShardedEngineConfig cfg;
  cfg.servers = servers;
  cfg.server = sim::ServerConfig::socket();
  cfg.seed = 31337;
  cfg.topology.clusters = cells;
  cfg.topology.shards = lanes;
  cfg.topology.hop_latency_s = 0.05;
  cfg.threads = threads;
  cfg.remote_fraction = 0.05;
  // Provisioned front-end: lift the Figure-14 knee above both estates so
  // neither gateway saturates and both complete the same workload. What
  // remains is the honest asymmetry — every forward pays an O(instances)
  // backlog scan, 256 instances for the monolith vs 32 per cell.
  cfg.gateway.instance_knee = 4096.0;
  // One compressed "24h" day (wl::AzureTraceConfig::day_seconds = 600);
  // base_qps is per cell, so both estates carry the same aggregate load.
  cfg.trace.base_qps = 80.0 * (8.0 / static_cast<double>(cells));
  return cfg;
}

Measured run_estate(const sim::ShardedEngineConfig& cfg, double horizon) {
  sim::ShardedEngine engine(cfg);
  engine.deploy_default_load();
  bench::Stopwatch watch;
  engine.run_until(horizon);
  Measured m;
  m.wall_s = watch.seconds();
  m.events = engine.events_executed();
  m.messages = engine.messages_exchanged();
  m.digest = engine.merged_digest();
  return m;
}

}  // namespace

int main() {
  bench::Run run("shard_scaling");
  const double horizon = 600.0;  // one compressed day

  bench::header("monolith: 1 cell x 256 servers (single event loop)");
  const Measured mono = run_estate(estate(1, 256, 1, 1), horizon);
  std::printf("events %llu  wall %.2fs  %.0f events/s\n",
              static_cast<unsigned long long>(mono.events), mono.wall_s,
              mono.events_per_s());

  bench::header("sharded: 8 cells x 32 servers, lane curve");
  const std::vector<std::size_t> lane_counts{1, 2, 4, 8};
  std::vector<Measured> sharded;
  bool identical = true;
  for (const std::size_t lanes : lane_counts) {
    const Measured m = run_estate(estate(8, 32, lanes, 1), horizon);
    if (!sharded.empty() && m.digest != sharded.front().digest) {
      identical = false;
    }
    std::printf("lanes %zu  events %llu  msgs %llu  wall %.2fs  "
                "%.0f events/s\n",
                lanes, static_cast<unsigned long long>(m.events),
                static_cast<unsigned long long>(m.messages), m.wall_s,
                m.events_per_s());
    sharded.push_back(m);
  }
  // Thread-pooled twin of the 8-lane run: same digest, threads only move
  // wall-clock (and only on multi-core hosts).
  const Measured pooled = run_estate(estate(8, 32, 8, 8), horizon);
  if (pooled.digest != sharded.front().digest) identical = false;
  std::printf("lanes 8 (pooled x8 threads)  wall %.2fs  %.0f events/s\n",
              pooled.wall_s, pooled.events_per_s());
  std::printf("byte-identical across lane/thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  const double speedup =
      mono.events_per_s() > 0.0
          ? sharded.back().events_per_s() / mono.events_per_s()
          : 0.0;
  bench::rule();
  std::printf("aggregate speedup, 8 shards vs monolith: %.2fx\n", speedup);

  run.result("mono_events_per_s", mono.events_per_s(), "events/s");
  run.result("sharded8_events_per_s", sharded.back().events_per_s(),
             "events/s");
  run.result("speedup_8shards_vs_mono", speedup, "x");
  run.result("digests_byte_identical", identical ? 1.0 : 0.0, "bool");
  run.result("messages_exchanged",
             static_cast<double>(sharded.back().messages), "msgs");

  obs::Json curve = obs::Json::array();
  for (std::size_t i = 0; i < lane_counts.size(); ++i) {
    obs::Json row = obs::Json::object();
    row.set("lanes", static_cast<double>(lane_counts[i]));
    row.set("events_per_s", sharded[i].events_per_s());
    row.set("events", static_cast<double>(sharded[i].events));
    curve.push_back(std::move(row));
  }
  run.report().add_series("lane_curve", std::move(curve));
  run.report().set_meta("estate", "256 servers: 1x256 vs 8x32, 600s day");
  return 0;
}
