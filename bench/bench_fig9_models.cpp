// Figure 9 + Table 2 (Gsight row) — prediction error of the five
// incremental learners (IRFR, IKNN, ILR, ISVR, IMLP) and the ESP / Pythia
// baselines, per colocation class (LS+LS, LS+SC/BG, SC+SC/BG), for both
// IPC and tail-latency targets (JCT for the SC class).
//
// Protocol: prequential (online) evaluation, matching the paper's
// incremental-learning deployment — scenarios arrive as a stream; the
// model predicts each scenario's QoS *before* observing its labels, then
// absorbs them. Error is reported over the second half of the stream
// (after convergence). Because colocation patterns recur in production,
// an encoder that can tell scenarios apart converges to low error, while
// workload-level predictors (Pythia, ESP) conflate scenarios that differ
// only spatially/temporally and plateau — exactly the paper's argument.
//
// Paper: IRFR wins everywhere (IPC error 1.71% on LS+SC/BG, <= 5% worst
// case SC+SC/BG); Pythia and ESP are the worst; tail latency is much
// harder than IPC (28.6% vs 1.71%).
#include <map>
#include <memory>

#include "baselines/esp.hpp"
#include "baselines/pythia.hpp"
#include "common.hpp"

namespace {

using namespace gsight;

std::vector<double> labels_for(const core::ScenarioSamples& s,
                               core::QosKind qos) {
  switch (qos) {
    case core::QosKind::kIpc:
      return s.labels;  // stream was built with kIpc
    case core::QosKind::kTailLatency:
      return s.outcome.window_p99;
    case core::QosKind::kJct:
      return s.outcome.jct_s > 0.0 ? std::vector<double>{s.outcome.jct_s}
                                   : std::vector<double>{};
  }
  return {};
}

/// Prequential error of any ScenarioPredictor over the stream: predict,
/// score (after the warmup half), then learn.
double prequential(core::ScenarioPredictor& predictor,
                   const std::vector<core::ScenarioSamples>& stream,
                   core::QosKind qos) {
  const std::size_t warm = stream.size() / 2;
  std::vector<double> truth, pred;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto labels = labels_for(stream[i], qos);
    if (labels.empty()) continue;
    if (i >= warm) {
      truth.push_back(stats::mean(labels));
      pred.push_back(predictor.predict(stream[i].outcome.scenario));
    }
    for (double l : labels) {
      predictor.observe(stream[i].outcome.scenario, l);
    }
  }
  predictor.flush();
  return ml::mape(truth, pred);
}

double run_gsight(core::ModelKind model,
                  const std::vector<core::ScenarioSamples>& stream,
                  core::QosKind qos, const core::EncoderConfig& enc) {
  core::PredictorConfig cfg;
  cfg.encoder = enc;
  cfg.model = model;
  cfg.qos = qos;
  // Small enough that the slow JCT stream (1 label/scenario) still folds
  // observations in before the evaluation half begins.
  cfg.update_batch = 64;
  core::GsightPredictor predictor(cfg);
  return prequential(predictor, stream, qos);
}

double run_baseline(bool pythia,
                    const std::vector<core::ScenarioSamples>& stream,
                    core::QosKind qos) {
  if (pythia) {
    baselines::PythiaPredictor predictor;
    return prequential(predictor, stream, qos);
  }
  baselines::EspPredictor predictor;
  return prequential(predictor, stream, qos);
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig9_models");
  auto cfg = bench::quick_builder_config();
  prof::ProfileStore store;
  core::DatasetBuilder builder(&store, cfg, /*seed=*/404);

  const std::vector<std::pair<core::ColocationClass, std::size_t>> classes = {
      {core::ColocationClass::kLsLs, 240},
      {core::ColocationClass::kLsScBg, 240},
      {core::ColocationClass::kScScBg, 240},
  };
  std::map<core::ColocationClass, std::vector<core::ScenarioSamples>> data;
  for (const auto& [cls, count] : classes) {
    bench::Stopwatch sw;
    data[cls] =
        builder.build(bench::build_request(cls, core::QosKind::kIpc, count));
    std::printf("[setup] %-9s: %zu scenarios in %.1f s\n", to_string(cls),
                data[cls].size(), sw.seconds());
    run.result(std::string("setup.") + to_string(cls) + ".seconds",
               sw.seconds(), "s");
  }

  // --- Campaign speedup probe ----------------------------------------------
  // Serial vs parallel rebuild of one class on the now-warm profile store
  // (fresh builder + pinned root seed per leg, so both legs execute the
  // exact same scenarios and the ratio is pure fan-out speedup).
  {
    auto probe = [&](std::size_t threads) {
      core::DatasetBuilder probe_builder(&store, cfg, /*seed=*/505);
      core::BuildRequest request;
      request.cls = core::ColocationClass::kLsScBg;
      request.qos = core::QosKind::kIpc;
      request.count = 48;
      request.campaign.threads = threads;
      request.campaign.root_seed = 0xF16'9000;
      bench::Stopwatch sw;
      const auto samples = probe_builder.build(request);
      return std::make_pair(sw.seconds(), samples.size());
    };
    const auto [serial_s, serial_n] = probe(1);
    const auto [parallel_s, parallel_n] = probe(bench::env_threads());
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    std::printf("[setup] campaign speedup: serial %.1f s, parallel %.1f s "
                "-> %.2fx (%zu/%zu scenarios)\n",
                serial_s, parallel_s, speedup, serial_n, parallel_n);
    run.result("setup_serial_s", serial_s, "s");
    run.result("setup_parallel_s", parallel_s, "s");
    run.result("setup_speedup", speedup, "x");
  }

  const std::vector<core::ModelKind> models = {
      core::ModelKind::kIRFR, core::ModelKind::kIKNN, core::ModelKind::kILR,
      core::ModelKind::kISVR, core::ModelKind::kIMLP};

  bench::header(
      "Figure 9(a): online IPC / JCT prediction error (%) by model");
  std::printf("%-10s %10s %10s %14s\n", "model", "LS+LS", "LS+SC/BG",
              "SC+SC/BG(JCT)");
  bench::rule();
  double irfr_ls_scbg = 0.0;
  for (const auto model : models) {
    const double a = run_gsight(model, data[core::ColocationClass::kLsLs],
                                core::QosKind::kIpc, cfg.encoder);
    const double b = run_gsight(model, data[core::ColocationClass::kLsScBg],
                                core::QosKind::kIpc, cfg.encoder);
    const double c = run_gsight(model, data[core::ColocationClass::kScScBg],
                                core::QosKind::kJct, cfg.encoder);
    if (model == core::ModelKind::kIRFR) irfr_ls_scbg = b;
    std::printf("%-10s %10.2f %10.2f %14.2f\n", to_string(model), a, b, c);
    const std::string prefix = std::string(to_string(model)) + ".";
    run.result(prefix + "ipc_error_ls_ls_pct", a, "%");
    run.result(prefix + "ipc_error_ls_scbg_pct", b, "%");
    run.result(prefix + "jct_error_sc_scbg_pct", c, "%");
  }
  for (const bool pythia : {true, false}) {
    const double a = run_baseline(pythia, data[core::ColocationClass::kLsLs],
                                  core::QosKind::kIpc);
    const double b = run_baseline(pythia, data[core::ColocationClass::kLsScBg],
                                  core::QosKind::kIpc);
    const double c = run_baseline(pythia, data[core::ColocationClass::kScScBg],
                                  core::QosKind::kJct);
    std::printf("%-10s %10.2f %10.2f %14.2f\n", pythia ? "Pythia" : "ESP", a,
                b, c);
    const std::string prefix = pythia ? "Pythia." : "ESP.";
    run.result(prefix + "ipc_error_ls_ls_pct", a, "%");
    run.result(prefix + "ipc_error_ls_scbg_pct", b, "%");
    run.result(prefix + "jct_error_sc_scbg_pct", c, "%");
  }
  bench::rule();
  std::printf("IRFR LS+SC/BG IPC error: %.2f%% (paper: 1.71%%)\n",
              irfr_ls_scbg);
  run.result("irfr_ipc_error_ls_scbg_pct", irfr_ls_scbg, "%");

  bench::header("Figure 9(b): online tail-latency prediction error (%)");
  std::printf("%-10s %10s %10s\n", "model", "LS+LS", "LS+SC/BG");
  bench::rule();
  for (const auto model : models) {
    const double a = run_gsight(model, data[core::ColocationClass::kLsLs],
                                core::QosKind::kTailLatency, cfg.encoder);
    const double b = run_gsight(model, data[core::ColocationClass::kLsScBg],
                                core::QosKind::kTailLatency, cfg.encoder);
    std::printf("%-10s %10.2f %10.2f\n", to_string(model), a, b);
    const std::string prefix = std::string(to_string(model)) + ".";
    run.result(prefix + "lat_error_ls_ls_pct", a, "%");
    run.result(prefix + "lat_error_ls_scbg_pct", b, "%");
  }
  for (const bool pythia : {true, false}) {
    const double a = run_baseline(pythia, data[core::ColocationClass::kLsLs],
                                  core::QosKind::kTailLatency);
    const double b = run_baseline(pythia, data[core::ColocationClass::kLsScBg],
                                  core::QosKind::kTailLatency);
    std::printf("%-10s %10.2f %10.2f\n", pythia ? "Pythia" : "ESP", a, b);
    const std::string prefix = pythia ? "Pythia." : "ESP.";
    run.result(prefix + "lat_error_ls_ls_pct", a, "%");
    run.result(prefix + "lat_error_ls_scbg_pct", b, "%");
  }
  bench::rule();
  std::printf("(paper: tail latency is much harder than IPC — 28.6%% for "
              "Gsight, improving to 18.7%% with the knee filter; see "
              "bench_ablation)\n");

  std::printf("\n[bench_fig9_models done in %.1f s]\n", total.seconds());
  return 0;
}
