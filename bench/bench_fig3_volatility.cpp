// Figure 3 — partial-interference characterization.
// (a) 36 scenarios: {matmul, dd, iperf, video-processing} x 9 social-
//     network functions; reports p99 latency, CoV of latency and IPC.
//     Paper: p99 spread across scenarios reaches 7x; matmul/video dent
//     IPC heavily, iperf barely (Observation 1); critical-path victims
//     hurt far more than side branches (Observation 2).
// (b) LogisticRegression + KMeans colocated on one socket with KMeans'
//     start delay swept g1..g7 = 0..360 s; reports both JCTs.
//     Paper: LR's JCT swings from 429 s to 785 s (>2x) with overlap
//     hitting the late-map/shuffle phases worst (Observation 3).
#include <algorithm>

#include "common.hpp"
#include "sim/platform.hpp"
#include "stats/seed_stream.hpp"
#include "workloads/functionbench.hpp"
#include "workloads/socialnetwork.hpp"
#include "workloads/sparkapps.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace gsight;

struct ScenarioResult {
  double p99_ms = 0.0;
  double cov = 0.0;
  double ipc = 0.0;
};

ScenarioResult run_scenario(const wl::App* corunner, std::size_t victim) {
  sim::PlatformConfig pc;
  pc.servers = 9;
  pc.server = sim::ServerConfig::socket();
  pc.seed = stats::SeedStream::derive(42, victim);
  pc.instance.startup_cores = 0.0;
  pc.instance.startup_disk_mbps = 0.0;
  sim::Platform platform(pc);

  auto sn = wl::social_network();
  for (auto& fn : sn.functions) fn.cold_start_s = 0.0;
  std::vector<std::size_t> placement(9);
  for (std::size_t i = 0; i < 9; ++i) placement[i] = i;
  const std::size_t sn_id = platform.deploy(sn, placement);
  if (corunner != nullptr) {
    const std::size_t co = platform.deploy(
        *corunner, std::vector<std::size_t>(corunner->function_count(), victim));
    platform.submit_job(co);
  }
  platform.set_open_loop(sn_id, 50.0);
  platform.run_until(60.0);

  ScenarioResult r;
  auto lat = platform.stats(sn_id).e2e_values_between(15.0, 60.0);
  r.p99_ms = stats::percentile(lat, 99.0) * 1e3;
  r.cov = stats::cov(lat);
  stats::Running ipc;
  for (std::size_t fn = 0; fn < 9; ++fn) {
    const auto total = platform.recorder().total(sn_id, fn);
    if (total.dt > 0.0) ipc.add(total.ipc);
  }
  r.ipc = ipc.mean();
  return r;
}

void figure_3a(bench::Run& run) {
  bench::header("Figure 3(a): 36 partial-interference scenarios (social network @ 50 qps)");
  const auto corunners = wl::characterization_corunners();
  const auto sn = wl::social_network();

  const auto solo = run_scenario(nullptr, 0);
  std::printf("%-18s %-22s %10s %8s %8s\n", "corunner", "victim fn", "p99(ms)",
              "CoV", "IPC");
  bench::rule();
  std::printf("%-18s %-22s %10.2f %8.3f %8.3f\n", "(none)", "-", solo.p99_ms,
              solo.cov, solo.ipc);
  double min_p99 = solo.p99_ms, max_p99 = solo.p99_ms;
  for (const auto& co : corunners) {
    for (std::size_t victim = 0; victim < 9; ++victim) {
      const auto r = run_scenario(&co, victim);
      min_p99 = std::min(min_p99, r.p99_ms);
      max_p99 = std::max(max_p99, r.p99_ms);
      std::printf("%-18s %-22s %10.2f %8.3f %8.3f%s\n", co.name.c_str(),
                  sn.functions[victim].name.c_str(), r.p99_ms, r.cov, r.ipc,
                  sn.graph.on_critical_path(victim) ? "  [critical]" : "");
    }
  }
  bench::rule();
  std::printf("p99 spread across scenarios: %.1fx (paper reports up to 7x)\n",
              max_p99 / min_p99);
  run.result("solo_p99_ms", solo.p99_ms, "ms");
  run.result("p99_spread_x", max_p99 / min_p99);
}

void figure_3b(bench::Run& run) {
  bench::header("Figure 3(b): LR + KMeans JCT vs start delay (one socket)");
  std::printf("%-6s %12s %14s %14s\n", "cfg", "delay(s)", "LR JCT(s)",
              "KMeans JCT(s)");
  bench::rule();
  double lr_min = 1e18, lr_max = 0.0;
  for (int g = 1; g <= 7; ++g) {
    const double delay = 60.0 * (g - 1);
    sim::PlatformConfig pc;
    pc.servers = 1;
    pc.server = sim::ServerConfig::socket();
    pc.seed = stats::SeedStream::derive(1000, static_cast<std::uint64_t>(g));
    pc.instance.startup_cores = 0.0;
    pc.instance.startup_disk_mbps = 0.0;
    sim::Platform platform(pc);
    auto lr = wl::logistic_regression();
    auto km = wl::kmeans();
    lr.functions[0].jitter_sigma = 0.0;
    lr.functions[0].cold_start_s = 0.0;
    km.functions[0].jitter_sigma = 0.0;
    km.functions[0].cold_start_s = 0.0;
    const std::size_t lr_id = platform.deploy(lr, {0});
    const std::size_t km_id = platform.deploy(km, {0});
    double lr_jct = 0.0, km_jct = 0.0;
    platform.submit_job(lr_id, [&](double v) { lr_jct = v; });
    platform.engine().after(delay, [&platform, km_id, &km_jct] {
      platform.submit_job(km_id);
      (void)km_jct;
    });
    // Capture KMeans' JCT via its stats after the run.
    platform.run_until(3000.0);
    if (!platform.stats(km_id).jct.empty()) {
      km_jct = platform.stats(km_id).jct.back().second;
    }
    lr_min = std::min(lr_min, lr_jct);
    lr_max = std::max(lr_max, lr_jct);
    std::printf("g%-5d %12.0f %14.1f %14.1f\n", g, delay, lr_jct, km_jct);
  }
  bench::rule();
  std::printf("LR JCT swing: %.2fx (paper: 429 s -> 785 s, ~1.8x; max diff >2x "
              "for KMeans)\n",
              lr_max / lr_min);
  run.result("lr_jct_swing_x", lr_max / lr_min);
}

}  // namespace

int main() {
  bench::Stopwatch total;
  bench::Run run("fig3_volatility");
  figure_3a(run);
  figure_3b(run);
  std::printf("\n[bench_fig3_volatility done in %.1f s]\n", total.seconds());
  return 0;
}
